// Package placement implements block-placement policies for erasure-coded
// stripes over a cluster, following Section III of the paper:
//
//   - every block of a stripe lives on a distinct node, and
//   - at most n-k blocks of any stripe share a rack, so an arbitrary
//     single-rack failure (and any n-k node failures) is tolerable.
//
// Three policies are provided: rack-constrained random placement (the
// HDFS-RAID-style default used by the simulator), round-robin placement
// (the testbed setup of Section VI), and parity-declustered placement (the
// even spreading assumed by the analysis of Section IV-B).
package placement

import (
	"errors"
	"fmt"

	"degradedfirst/internal/erasure"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// Placement maps every block of every stripe to the node storing it.
type Placement struct {
	n, k    int
	stripes [][]topology.NodeID // stripes[s][i] = holder of block (s, i)
	byNode  map[topology.NodeID][]erasure.BlockID
}

// Policy produces placements.
type Policy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// Place assigns numStripes stripes of n blocks (k native) onto the
	// alive nodes of the cluster.
	Place(c *topology.Cluster, numStripes, n, k int, rng *stats.RNG) (*Placement, error)
}

func newPlacement(n, k, numStripes int) *Placement {
	p := &Placement{
		n:       n,
		k:       k,
		stripes: make([][]topology.NodeID, numStripes),
		byNode:  make(map[topology.NodeID][]erasure.BlockID),
	}
	for s := range p.stripes {
		p.stripes[s] = make([]topology.NodeID, n)
		for i := range p.stripes[s] {
			p.stripes[s][i] = -1
		}
	}
	return p
}

func (p *Placement) assign(s, i int, id topology.NodeID) {
	p.stripes[s][i] = id
	p.byNode[id] = append(p.byNode[id], erasure.BlockID{Stripe: s, Index: i})
}

// N returns the stripe width.
func (p *Placement) N() int { return p.n }

// K returns the native block count per stripe.
func (p *Placement) K() int { return p.k }

// NumStripes returns how many stripes are placed.
func (p *Placement) NumStripes() int { return len(p.stripes) }

// NumNativeBlocks returns the total count of native blocks (stripes * k).
func (p *Placement) NumNativeBlocks() int { return len(p.stripes) * p.k }

// Holder returns the node storing block b.
func (p *Placement) Holder(b erasure.BlockID) topology.NodeID {
	return p.stripes[b.Stripe][b.Index]
}

// StripeHolders returns the holders of all n blocks of stripe s, in block
// index order. The slice is shared; do not modify.
func (p *Placement) StripeHolders(s int) []topology.NodeID { return p.stripes[s] }

// NodeBlocks returns the blocks stored on node id (nil if none). The slice
// is shared; do not modify.
func (p *Placement) NodeBlocks(id topology.NodeID) []erasure.BlockID {
	return p.byNode[id]
}

// NativeBlocks returns all native BlockIDs in (stripe, index) order.
func (p *Placement) NativeBlocks() []erasure.BlockID {
	out := make([]erasure.BlockID, 0, p.NumNativeBlocks())
	for s := range p.stripes {
		for i := 0; i < p.k; i++ {
			out = append(out, erasure.BlockID{Stripe: s, Index: i})
		}
	}
	return out
}

// Validate checks the basic placement invariants against the cluster:
// every block assigned to a valid node, and all blocks of a stripe on
// distinct nodes (so one node failure loses at most one block per stripe).
func (p *Placement) Validate(c *topology.Cluster) error {
	for s, holders := range p.stripes {
		seenNode := make(map[topology.NodeID]bool, p.n)
		for i, id := range holders {
			if id < 0 || int(id) >= c.NumNodes() {
				return fmt.Errorf("placement: stripe %d block %d unassigned or invalid (node %d)", s, i, id)
			}
			if seenNode[id] {
				return fmt.Errorf("placement: stripe %d has two blocks on node %d", s, id)
			}
			seenNode[id] = true
		}
	}
	return nil
}

// ValidateRackConstraint additionally enforces the paper's Section III
// condition: at most n-k blocks of any stripe share a rack, so any
// single-rack failure is tolerable. Note the paper's own testbed placement
// (round-robin, Section VI) does not guarantee this; only
// RackConstrainedRandom and ParityDeclustered do.
func (p *Placement) ValidateRackConstraint(c *topology.Cluster) error {
	if err := p.Validate(c); err != nil {
		return err
	}
	for s, holders := range p.stripes {
		perRack := make(map[topology.RackID]int)
		for _, id := range holders {
			perRack[c.RackOf(id)]++
		}
		for r, cnt := range perRack {
			if cnt > p.n-p.k {
				return fmt.Errorf("placement: stripe %d has %d blocks in rack %d, max %d", s, cnt, r, p.n-p.k)
			}
		}
	}
	return nil
}

// LostNativeBlocks returns the native blocks whose holder is failed — the
// inputs of the job's degraded tasks.
func (p *Placement) LostNativeBlocks(c *topology.Cluster) []erasure.BlockID {
	var out []erasure.BlockID
	for s := range p.stripes {
		for i := 0; i < p.k; i++ {
			if !c.Alive(p.stripes[s][i]) {
				out = append(out, erasure.BlockID{Stripe: s, Index: i})
			}
		}
	}
	return out
}

// Reassign moves block b to node to, updating both the stripe map and
// the per-node index. The background repair subsystem calls this after
// reconstructing a lost block on a new holder; the old (failed) holder
// drops the block from its inventory so a later revive cannot resurrect
// a stale copy.
func (p *Placement) Reassign(b erasure.BlockID, to topology.NodeID) {
	from := p.stripes[b.Stripe][b.Index]
	if from == to {
		return
	}
	p.stripes[b.Stripe][b.Index] = to
	pool := p.byNode[from]
	for i, x := range pool {
		if x == b {
			p.byNode[from] = append(pool[:i], pool[i+1:]...)
			break
		}
	}
	if len(p.byNode[from]) == 0 {
		delete(p.byNode, from)
	}
	p.byNode[to] = append(p.byNode[to], b)
}

// SurvivorsOf returns the indices (within stripe s) and holders of the
// blocks of stripe s whose nodes are alive.
func (p *Placement) SurvivorsOf(c *topology.Cluster, s int) (idx []int, holders []topology.NodeID) {
	for i, id := range p.stripes[s] {
		if c.Alive(id) {
			idx = append(idx, i)
			holders = append(holders, id)
		}
	}
	return idx, holders
}

// --- Policies ---

// RackConstrainedRandom mimics the HDFS-RAID default described in Section
// III: each block goes to a random node subject to the per-stripe
// constraints, with light load balancing (prefer less-loaded nodes among
// valid candidates).
type RackConstrainedRandom struct{}

// Name implements Policy.
func (RackConstrainedRandom) Name() string { return "rack-constrained-random" }

// Place implements Policy.
func (RackConstrainedRandom) Place(c *topology.Cluster, numStripes, n, k int, rng *stats.RNG) (*Placement, error) {
	if err := checkParams(c, n, k, numStripes); err != nil {
		return nil, err
	}
	p := newPlacement(n, k, numStripes)
	load := make(map[topology.NodeID]int)
	for s := 0; s < numStripes; s++ {
		used := make(map[topology.NodeID]bool, n)
		perRack := make(map[topology.RackID]int)
		for i := 0; i < n; i++ {
			// Candidates: alive, unused in this stripe, rack not full.
			var cands []topology.NodeID
			minLoad := int(^uint(0) >> 1)
			for _, node := range c.Nodes() {
				if node.Failed() || used[node.ID] || perRack[node.Rack] >= n-k {
					continue
				}
				switch {
				case load[node.ID] < minLoad:
					minLoad = load[node.ID]
					cands = cands[:0]
					cands = append(cands, node.ID)
				case load[node.ID] == minLoad:
					cands = append(cands, node.ID)
				}
			}
			if len(cands) == 0 {
				return nil, fmt.Errorf("placement: no valid node for stripe %d block %d (cluster too small for (%d,%d))", s, i, n, k)
			}
			id := cands[rng.Intn(len(cands))]
			p.assign(s, i, id)
			used[id] = true
			perRack[c.RackOf(id)]++
			load[id]++
		}
	}
	return p, nil
}

// RoundRobin places consecutive blocks on consecutive nodes, as in the
// paper's testbed ("blocks are placed in the slaves in a round-robin manner
// for load balancing", Section VI). The node order interleaves racks so a
// stripe spreads across racks as evenly as possible, but — exactly like the
// paper's testbed — the strict Section III rack constraint is best-effort
// only (e.g. (12,10) over 3 racks necessarily puts 4 blocks in some rack).
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round-robin" }

// Place implements Policy.
func (RoundRobin) Place(c *topology.Cluster, numStripes, n, k int, rng *stats.RNG) (*Placement, error) {
	if err := checkParams(c, n, k, numStripes); err != nil {
		return nil, err
	}
	// Build a rack-interleaved node order: rack0[0], rack1[0], ...,
	// rack0[1], rack1[1], ... skipping failed nodes.
	var order []topology.NodeID
	for depth := 0; ; depth++ {
		added := false
		for r := 0; r < c.NumRacks(); r++ {
			var aliveInRack []topology.NodeID
			for _, id := range c.RackNodes(topology.RackID(r)) {
				if c.Alive(id) {
					aliveInRack = append(aliveInRack, id)
				}
			}
			if depth < len(aliveInRack) {
				order = append(order, aliveInRack[depth])
				added = true
			}
		}
		if !added {
			break
		}
	}
	p := newPlacement(n, k, numStripes)
	cursor := 0
	for s := 0; s < numStripes; s++ {
		for i := 0; i < n; i++ {
			p.assign(s, i, order[(cursor+i)%len(order)])
		}
		cursor = (cursor + n) % len(order)
	}
	return p, nil
}

// ParityDeclustered spreads stripes evenly over all nodes and racks
// (Section IV-B assumes stripes "distributed evenly among the N nodes as in
// parity declustering"). It walks racks round-robin so every stripe touches
// as many racks as possible, then rotates the starting rack per stripe.
type ParityDeclustered struct{}

// Name implements Policy.
func (ParityDeclustered) Name() string { return "parity-declustered" }

// Place implements Policy.
func (ParityDeclustered) Place(c *topology.Cluster, numStripes, n, k int, rng *stats.RNG) (*Placement, error) {
	if err := checkParams(c, n, k, numStripes); err != nil {
		return nil, err
	}
	// Per-rack alive node lists and rotating cursors.
	racks := make([][]topology.NodeID, 0, c.NumRacks())
	for r := 0; r < c.NumRacks(); r++ {
		var aliveInRack []topology.NodeID
		for _, id := range c.RackNodes(topology.RackID(r)) {
			if c.Alive(id) {
				aliveInRack = append(aliveInRack, id)
			}
		}
		if len(aliveInRack) > 0 {
			racks = append(racks, aliveInRack)
		}
	}
	if len(racks) == 0 {
		return nil, errors.New("placement: no alive nodes")
	}
	nodeCursor := make([]int, len(racks))
	p := newPlacement(n, k, numStripes)
	for s := 0; s < numStripes; s++ {
		used := make(map[topology.NodeID]bool, n)
		perRack := make(map[int]int, len(racks))
		rackIdx := s % len(racks)
		for i := 0; i < n; i++ {
			placed := false
			for attempts := 0; attempts < len(racks); attempts++ {
				r := (rackIdx + attempts) % len(racks)
				if perRack[r] >= n-k {
					continue
				}
				// Find an unused node in this rack, starting at its cursor.
				nodes := racks[r]
				for off := 0; off < len(nodes); off++ {
					id := nodes[(nodeCursor[r]+off)%len(nodes)]
					if used[id] {
						continue
					}
					p.assign(s, i, id)
					used[id] = true
					perRack[r]++
					nodeCursor[r] = (nodeCursor[r] + off + 1) % len(nodes)
					placed = true
					break
				}
				if placed {
					rackIdx = (r + 1) % len(racks)
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("placement: parity declustering failed for stripe %d block %d: cluster too small for (%d,%d)", s, i, n, k)
			}
		}
	}
	return p, nil
}

// Explicit places blocks exactly as given: Assignments[s][i] is the node
// holding block i of stripe s. Used to reproduce the paper's worked
// examples (Figures 2 and 4), whose placements are fixed by construction.
type Explicit struct {
	Assignments [][]topology.NodeID
}

// Name implements Policy.
func (Explicit) Name() string { return "explicit" }

// Place implements Policy. numStripes, n and k must match the shape of
// Assignments.
func (e Explicit) Place(c *topology.Cluster, numStripes, n, k int, rng *stats.RNG) (*Placement, error) {
	if k <= 0 || n <= k {
		return nil, fmt.Errorf("placement: invalid (n,k)=(%d,%d)", n, k)
	}
	if len(e.Assignments) != numStripes {
		return nil, fmt.Errorf("placement: explicit assignment has %d stripes, want %d", len(e.Assignments), numStripes)
	}
	p := newPlacement(n, k, numStripes)
	for s, holders := range e.Assignments {
		if len(holders) != n {
			return nil, fmt.Errorf("placement: explicit stripe %d has %d blocks, want %d", s, len(holders), n)
		}
		for i, id := range holders {
			if id < 0 || int(id) >= c.NumNodes() {
				return nil, fmt.Errorf("placement: explicit stripe %d block %d on invalid node %d", s, i, id)
			}
			p.assign(s, i, id)
		}
	}
	if err := p.Validate(c); err != nil {
		return nil, err
	}
	return p, nil
}

func checkParams(c *topology.Cluster, n, k, numStripes int) error {
	if k <= 0 || n <= k {
		return fmt.Errorf("placement: invalid (n,k)=(%d,%d)", n, k)
	}
	if numStripes < 0 {
		return fmt.Errorf("placement: negative stripe count %d", numStripes)
	}
	if len(c.AliveNodes()) < n {
		return fmt.Errorf("placement: need >= n=%d alive nodes, have %d", n, len(c.AliveNodes()))
	}
	return nil
}
