module degradedfirst

go 1.22
