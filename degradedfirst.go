// Package degradedfirst reproduces "Degraded-First Scheduling for
// MapReduce in Erasure-Coded Storage Clusters" (Li, Lee, Hu — DSN 2014)
// as a Go library.
//
// The package is a facade over the building blocks in internal/:
//
//   - a discrete-event MapReduce simulator (Simulate) with the paper's
//     three schedulers — locality-first (LF), basic degraded-first (BDF),
//     and enhanced degraded-first (EDF);
//   - a real-execution mini-MapReduce engine (RunJobs) over an in-memory
//     erasure-coded DFS, standing in for the paper's Hadoop testbed;
//   - the closed-form runtime models of Section IV-B (Analysis*);
//   - the experiment registry regenerating every table and figure
//     (Experiments, RunExperiment).
//
// Quick start:
//
//	cfg := degradedfirst.DefaultSimConfig()
//	cfg.Scheduler = degradedfirst.EnhancedDegradedFirst
//	res, err := degradedfirst.Simulate(cfg, degradedfirst.DefaultJob())
package degradedfirst

import (
	"context"

	"degradedfirst/internal/analysis"
	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/exp"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
	"degradedfirst/internal/workload"
)

// Scheduler selects one of the paper's scheduling algorithms.
type Scheduler = sched.Kind

// The three algorithms of the paper plus the unpaced ablation.
const (
	// LocalityFirst is Hadoop's default (Algorithm 1).
	LocalityFirst = sched.KindLF
	// BasicDegradedFirst is Algorithm 2.
	BasicDegradedFirst = sched.KindBDF
	// EnhancedDegradedFirst is Algorithm 3 (locality preservation + rack
	// awareness).
	EnhancedDegradedFirst = sched.KindEDF
	// EagerDegradedFirst is the unpaced ablation (not in the paper).
	EagerDegradedFirst = sched.KindEagerDF
	// DelayLocalityFirst is the delay-scheduling baseline (Zaharia et al.
	// EuroSys 2010, the paper's related work [35]).
	DelayLocalityFirst = sched.KindDelayLF
)

// Simulation types (the discrete-event simulator of Section V).
type (
	// SimConfig configures a simulation run (cluster shape, network,
	// code, placement, scheduler, failure scenario).
	SimConfig = mapred.Config
	// JobSpec describes one simulated MapReduce job.
	JobSpec = mapred.JobSpec
	// Dist is a truncated normal distribution of task times.
	Dist = mapred.Dist
	// SimResult is a simulation outcome with per-task records.
	SimResult = mapred.Result
	// JobResult is one job's outcome.
	JobResult = mapred.JobResult
)

// Cluster and failure types.
type (
	// FailurePattern selects the injected failure scenario.
	FailurePattern = topology.FailurePattern
	// NodeID identifies a cluster node.
	NodeID = topology.NodeID
)

// Failure patterns (Figure 7d).
const (
	// NoFailure runs in normal mode.
	NoFailure = topology.NoFailure
	// SingleNodeFailure fails one random node.
	SingleNodeFailure = topology.SingleNodeFailure
	// DoubleNodeFailure fails two random nodes.
	DoubleNodeFailure = topology.DoubleNodeFailure
	// RackFailure fails one random rack.
	RackFailure = topology.RackFailure
)

// Bandwidth constants in bytes per second.
const (
	// Mbps is one megabit per second.
	Mbps = netsim.Mbps
	// Gbps is one gigabit per second.
	Gbps = netsim.Gbps
)

// DefaultSimConfig returns the paper's default simulation scenario
// (Section V-B): 40 nodes / 4 racks, (20,15) code, 128 MB blocks, 1440
// blocks, 1 Gbps racks, single-node failure, LF scheduling.
func DefaultSimConfig() SimConfig { return mapred.DefaultConfig() }

// DefaultJob returns the paper's default job: map N(20 s, 1 s), reduce
// N(30 s, 2 s), 30 reducers, 1% shuffle ratio.
func DefaultJob() JobSpec { return mapred.DefaultJob() }

// Simulate runs the discrete-event simulator over the jobs.
func Simulate(cfg SimConfig, jobs ...JobSpec) (*SimResult, error) {
	return mapred.Run(cfg, jobs)
}

// SimulateContext is Simulate with cancellation: ctx aborts the run at
// the next heartbeat.
func SimulateContext(ctx context.Context, cfg SimConfig, jobs ...JobSpec) (*SimResult, error) {
	return mapred.RunContext(ctx, cfg, jobs)
}

// Analysis types (Section IV-B closed-form models).
type (
	// AnalysisParams are the model parameters in the paper's notation.
	AnalysisParams = analysis.Params
	// AnalysisPoint is one model evaluation.
	AnalysisPoint = analysis.Point
)

// DefaultAnalysisParams returns the paper's default analysis setting.
func DefaultAnalysisParams() AnalysisParams { return analysis.Default() }

// Erasure-coded storage types (the real-data substrate).
type (
	// Code is a systematic (n, k) Reed-Solomon code.
	Code = erasure.Code
	// BlockID identifies one block of an erasure-coded file.
	BlockID = erasure.BlockID
	// FileSystem is the in-memory erasure-coded DFS.
	FileSystem = dfs.FS
	// Cluster is the node/rack topology with failure state.
	Cluster = topology.Cluster
	// ClusterConfig shapes a Cluster.
	ClusterConfig = topology.Config
	// RNG is the deterministic random source used across the library.
	RNG = stats.RNG
)

// NewCode returns an (n, k) Reed-Solomon code.
func NewCode(n, k int) (*Code, error) { return erasure.New(n, k) }

// LRC is an Azure-style local reconstruction code: single-block repairs
// read only a local group (k/l blocks) instead of k.
type LRC = erasure.LRC

// NewLRC returns an LRC(k, l, g) code.
func NewLRC(k, l, g int) (*LRC, error) { return erasure.NewLRC(k, l, g) }

// SlotTimeline renders a job's map-slot activity as ASCII art in the
// style of the paper's Figure 3 ('L' local, 'r' rack-local, 'R' remote,
// 'D' degraded, 'x' failed node).
func SlotTimeline(res *SimResult, jobIdx, width int) string {
	return mapred.Timeline(res, jobIdx, width)
}

// NewCluster builds a cluster topology.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return topology.New(cfg) }

// NewRNG returns a deterministic random source.
func NewRNG(seed int64) *RNG { return stats.NewRNG(seed) }

// NewFileSystem builds an empty erasure-coded DFS over the cluster with
// round-robin placement (the paper's testbed policy). Use the internal
// placement package via the facade helpers for other policies.
func NewFileSystem(c *Cluster, code *Code, blockSize int, rng *RNG) (*FileSystem, error) {
	return dfs.New(c, code, blockSize, placement.RoundRobin{}, rng)
}

// Coder is the erasure-code interface shared by Reed-Solomon and LRC.
type Coder = erasure.Coder

// NewFileSystemWithCoder is NewFileSystem for any erasure code, including
// LRC — degraded reads then use the code's cheapest repair strategy
// (local groups when available).
func NewFileSystemWithCoder(c *Cluster, code Coder, blockSize int, rng *RNG) (*FileSystem, error) {
	return dfs.New(c, code, blockSize, placement.RoundRobin{}, rng)
}

// Real-execution engine types (the paper's testbed stand-in, Section VI).
type (
	// MRJob is a real MapReduce job for the minimr engine.
	MRJob = minimr.Job
	// MROptions configures a minimr run.
	MROptions = minimr.Options
	// MRReport is a minimr run outcome including real outputs.
	MRReport = minimr.Report
)

// Testbed scale constants (see internal/minimr).
const (
	// TestbedBlockSize is the scaled block size (64 KB for the paper's
	// 64 MB).
	TestbedBlockSize = minimr.TestbedBlockSize
	// TestbedRackBps is the correspondingly scaled rack bandwidth.
	TestbedRackBps = minimr.TestbedRackBps
	// TestbedNumBlocks is the paper's 15 GB input in blocks.
	TestbedNumBlocks = minimr.TestbedNumBlocks
)

// WordCount, Grep and LineCount are the paper's three I/O-heavy jobs.
func WordCount(input string, reducers int) MRJob { return minimr.WordCountJob(input, reducers) }

// Grep builds the paper's Grep job for the given word.
func Grep(input, word string, reducers int) MRJob { return minimr.GrepJob(input, word, reducers) }

// LineCount builds the paper's LineCount job.
func LineCount(input string, reducers int) MRJob { return minimr.LineCountJob(input, reducers) }

// RunJobs executes real MapReduce jobs on the DFS through the virtual-time
// engine.
func RunJobs(fs *FileSystem, opts MROptions, jobs []MRJob) (*MRReport, error) {
	return minimr.Run(fs, opts, jobs)
}

// RunJobsContext is RunJobs with cancellation: ctx aborts the run at the
// next heartbeat.
func RunJobsContext(ctx context.Context, fs *FileSystem, opts MROptions, jobs []MRJob) (*MRReport, error) {
	return minimr.RunContext(ctx, fs, opts, jobs)
}

// GenerateCorpus produces deterministic block-aligned English-like text
// for the testbed jobs.
func GenerateCorpus(numBlocks, blockSize int, seed int64) ([]byte, error) {
	return workload.GenerateBlockAlignedCorpus(numBlocks, blockSize, seed)
}

// Experiment types (the per-figure/table registry).
type (
	// Experiment is a registered artifact reproduction.
	Experiment = exp.Experiment
	// ExperimentOptions tunes experiment cost.
	ExperimentOptions = exp.Options
	// ExperimentTable is a printable experiment result.
	ExperimentTable = exp.Table
)

// Experiments lists every registered figure/table reproduction, sorted by
// ID.
func Experiments() []Experiment { return exp.All() }

// Structured trace types (the cluster runtime's lifecycle event stream;
// see internal/trace).
type (
	// TraceEvent is one typed lifecycle event on the virtual clock.
	TraceEvent = trace.Event
	// TraceSink receives trace events; set it on SimConfig.Trace,
	// MROptions.Trace or ExperimentOptions.Trace.
	TraceSink = trace.Sink
	// MemoryTrace buffers events in memory for inspection.
	MemoryTrace = trace.Memory
)

// RunExperiment regenerates one figure or table by registry ID (e.g.
// "fig7a", "table1").
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentTable, error) {
	return RunExperimentContext(context.Background(), id, opts)
}

// RunExperimentContext is RunExperiment with cancellation: ctx aborts the
// experiment's in-flight simulation runs at their next heartbeat.
func RunExperimentContext(ctx context.Context, id string, opts ExperimentOptions) (*ExperimentTable, error) {
	e, ok := exp.Get(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(ctx, opts)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "degradedfirst: unknown experiment " + string(e)
}

// MRTimeline renders a minimr job's map-slot activity as ASCII art, like
// SlotTimeline but for real-execution reports.
func MRTimeline(rep *MRReport, jobIdx, width int) string {
	if rep == nil || jobIdx < 0 || jobIdx >= len(rep.Jobs) {
		return ""
	}
	return mapred.JobTimeline(&rep.Jobs[jobIdx], rep.Failed, width)
}
