package degradedfirst_test

import (
	"fmt"
	"log"

	degradedfirst "degradedfirst"
)

// ExampleSimulate compares the three schedulers on a small degraded
// cluster; with a fixed seed the failed node and placements are identical
// across runs, so the comparison is paired.
func ExampleSimulate() {
	job := degradedfirst.DefaultJob()
	job.NumReduceTasks = 0
	job.ShuffleRatio = 0

	var runtimes []float64
	for _, kind := range []degradedfirst.Scheduler{
		degradedfirst.LocalityFirst, degradedfirst.EnhancedDegradedFirst,
	} {
		cfg := degradedfirst.DefaultSimConfig()
		cfg.Nodes, cfg.Racks = 12, 3
		cfg.N, cfg.K = 6, 4
		cfg.NumBlocks = 120
		cfg.BlockSizeBytes = 16e6
		cfg.RackBps = 100 * degradedfirst.Mbps
		cfg.Scheduler = kind
		cfg.Seed = 1
		res, err := degradedfirst.Simulate(cfg, job)
		if err != nil {
			log.Fatal(err)
		}
		runtimes = append(runtimes, res.Jobs[0].Runtime())
	}
	fmt.Println("EDF faster than LF:", runtimes[1] < runtimes[0])
	// Output:
	// EDF faster than LF: true
}

// ExampleAnalysisParams evaluates the paper's closed-form models at the
// default setting.
func ExampleAnalysisParams() {
	p := degradedfirst.DefaultAnalysisParams()
	fmt.Printf("normal %.0fs  LF %.3f  DF %.3f  saving %.1f%%\n",
		p.NormalRuntime(), p.NormalizedLF(), p.NormalizedDF(), p.ReductionPercent())
	// Output:
	// normal 180s  LF 1.572  DF 1.137  saving 27.7%
}

// ExampleNewCode encodes a stripe and performs a degraded read of a lost
// block.
func ExampleNewCode() {
	code, err := degradedfirst.NewCode(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	stripe, err := code.EncodeStripe([][]byte{
		[]byte("hello world "),
		[]byte("from stripes"),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Block 0 is lost; rebuild it from blocks 1 and 2 (a parity block).
	rebuilt, err := code.ReconstructBlock(0, []int{1, 2}, [][]byte{stripe[1], stripe[2]})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", rebuilt)
	// Output:
	// hello world
}

// ExampleNewLRC shows the cheap local repair of a local reconstruction
// code: one lost block is rebuilt from its local group only.
func ExampleNewLRC() {
	code, err := degradedfirst.NewLRC(4, 2, 1) // 4 data, 2 local groups, 1 global parity
	if err != nil {
		log.Fatal(err)
	}
	group, ok := code.LocalRepairGroup(0)
	fmt.Println("repair set of block 0:", group, ok)
	// Output:
	// repair set of block 0: [1 4] true
}
