// Command dfexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dfexp -list                 # list registered experiments
//	dfexp -run fig7a,fig8c      # run specific experiments
//	dfexp -all                  # run everything
//	dfexp -all -quick           # smoke-scale run
//	dfexp -run fig7a -seeds 30  # override the sample count
//	dfexp -all -out results.txt # also write the output to a file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"degradedfirst/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dfexp:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dfexp", flag.ContinueOnError)
	var (
		list   = fs.Bool("list", false, "list registered experiments and exit")
		runID  = fs.String("run", "", "comma-separated experiment IDs to run")
		all    = fs.Bool("all", false, "run every registered experiment")
		seeds  = fs.Int("seeds", 0, "override the per-experiment sample count")
		quick  = fs.Bool("quick", false, "smoke-scale workloads (fewer seeds, smaller jobs)")
		par    = fs.Int("parallel", 0, "max concurrent simulation runs (0 = NumCPU)")
		out    = fs.String("out", "", "also write results to this file")
		format = fs.String("format", "text", "output format: text, csv or json")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
			fmt.Fprintf(stdout, "%-18s paper: %s\n", "", e.Paper)
		}
		return nil
	}

	var targets []exp.Experiment
	switch {
	case *all:
		targets = exp.All()
	case *runID != "":
		for _, id := range strings.Split(*runID, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.Get(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			targets = append(targets, e)
		}
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run or -all")
	}

	writers := []io.Writer{stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)

	opts := exp.Options{Seeds: *seeds, Quick: *quick, Parallelism: *par}
	for _, e := range targets {
		start := time.Now()
		tab, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "text":
			fmt.Fprintln(w, tab.String())
			fmt.Fprintf(w, "paper: %s\n(took %v)\n\n", e.Paper, time.Since(start).Round(time.Millisecond))
		case "csv":
			fmt.Fprintf(w, "# %s: %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		case "json":
			js, err := json.Marshal(tab)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, string(js))
		default:
			return fmt.Errorf("unknown format %q (text, csv, json)", *format)
		}
	}
	return nil
}
