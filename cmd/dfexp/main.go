// Command dfexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dfexp -list                 # list registered experiments
//	dfexp -run fig7a,fig8c      # run specific experiments
//	dfexp -all                  # run everything
//	dfexp -all -quick           # smoke-scale run
//	dfexp -run fig7a -seeds 30  # override the sample count
//	dfexp -all -out results.txt # also write the output to a file
//	dfexp -run fig3 -trace out.jsonl   # dump structured trace events
//	dfexp -run fig5a -format json      # also write results/fig5a.json
//
// A Ctrl-C (SIGINT) cancels in-flight simulation runs and exits with an
// error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"degradedfirst/internal/exp"
	"degradedfirst/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dfexp:", err)
		os.Exit(1)
	}
}

// expSink stamps every event's Run label with the experiment ID so one
// trace file can hold several experiments' events.
type expSink struct {
	id   string
	sink trace.Sink
}

func (s expSink) Emit(e trace.Event) {
	if e.Run == "" {
		e.Run = s.id
	} else {
		e.Run = s.id + "/" + e.Run
	}
	s.sink.Emit(e)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dfexp", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list registered experiments and exit")
		runID     = fs.String("run", "", "comma-separated experiment IDs to run")
		all       = fs.Bool("all", false, "run every registered experiment")
		seeds     = fs.Int("seeds", 0, "override the per-experiment sample count")
		quick     = fs.Bool("quick", false, "smoke-scale workloads (fewer seeds, smaller jobs)")
		par       = fs.Int("parallel", 0, "max concurrent simulation runs (0 = NumCPU)")
		out       = fs.String("out", "", "also write results to this file")
		format    = fs.String("format", "text", "output format: text, csv or json")
		traceOut  = fs.String("trace", "", "write structured trace events (JSON lines) to this file")
		resultDir = fs.String("results", "results", "directory for per-experiment JSON results (with -format json)")
		jobSched  = fs.String("jobsched", "", "restrict the jobsched experiment to one job-level policy: fifo, fairshare, quota or deadline")
	)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
			fmt.Fprintf(stdout, "%-18s paper: %s\n", "", e.Paper)
		}
		return nil
	}

	var targets []exp.Experiment
	switch {
	case *all:
		targets = exp.All()
	case *runID != "":
		for _, id := range strings.Split(*runID, ",") {
			id = strings.TrimSpace(id)
			e, ok := exp.Get(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q; valid IDs: %s", id, strings.Join(validIDs(), ", "))
			}
			targets = append(targets, e)
		}
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -run or -all")
	}

	writers := []io.Writer{stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)

	var traceSink *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceSink = trace.NewJSONL(f)
		// Close is idempotent: this covers early error returns, while the
		// explicit Close below surfaces deferred write errors.
		defer traceSink.Close()
	}

	if *format == "json" {
		if err := os.MkdirAll(*resultDir, 0o755); err != nil {
			return err
		}
	}

	opts := exp.Options{Seeds: *seeds, Quick: *quick, Parallelism: *par, JobSched: *jobSched}
	for _, e := range targets {
		if traceSink != nil {
			opts.Trace = expSink{id: e.ID, sink: traceSink}
		}
		start := time.Now()
		tab, err := e.Run(ctx, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		switch *format {
		case "text":
			fmt.Fprintln(w, tab.String())
			fmt.Fprintf(w, "paper: %s\n(took %v)\n\n", e.Paper, time.Since(start).Round(time.Millisecond))
		case "csv":
			fmt.Fprintf(w, "# %s: %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		case "json":
			js, err := json.Marshal(tab)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, string(js))
			if err := writeResultFile(*resultDir, tab); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q (text, csv, json)", *format)
		}
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	return nil
}

func validIDs() []string {
	var ids []string
	for _, e := range exp.All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// writeResultFile stores one experiment's table as stable, diffable JSON:
// map keys are sorted by encoding/json, cell values carry the tables' own
// fixed float precision, and the file ends in a newline.
func writeResultFile(dir string, tab *exp.Table) error {
	doc := map[string]any{
		"id":      tab.ID,
		"title":   tab.Title,
		"columns": tab.Columns,
		"rows":    tab.Rows,
	}
	if len(tab.Notes) > 0 {
		doc["notes"] = tab.Notes
	}
	js, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, tab.ID+".json")
	return os.WriteFile(path, append(js, '\n'), 0o644)
}
