package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"degradedfirst/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func runArgs(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errOut strings.Builder
	err := run(context.Background(), args, &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestList(t *testing.T) {
	got, _, err := runArgs(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3", "fig7a", "table1", "ext-lrc", "paper:"} {
		if !strings.Contains(got, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunOneText(t *testing.T) {
	got, _, err := runArgs(t, "-run", "fig5a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "=== fig5a") {
		t.Fatalf("output:\n%s", got)
	}
}

func TestRunCSVAndJSON(t *testing.T) {
	got, _, err := runArgs(t, "-run", "fig5b", "-format", "csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "setting,LF norm,DF norm,DF vs LF") {
		t.Fatalf("csv output:\n%s", got)
	}
	dir := t.TempDir()
	got, _, err = runArgs(t, "-run", "fig5c", "-format", "json", "-results", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, `"id":"fig5c"`) {
		t.Fatalf("json output:\n%s", got)
	}
	if _, _, err := runArgs(t, "-run", "fig5a", "-format", "yaml"); err == nil {
		t.Fatal("unknown format must fail")
	}
}

func TestJSONResultsFileIsStable(t *testing.T) {
	read := func() string {
		dir := t.TempDir()
		if _, _, err := runArgs(t, "-run", "fig5c", "-format", "json", "-results", dir); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig5c.json"))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	first := read()
	if !strings.Contains(first, `"id": "fig5c"`) || !strings.Contains(first, `"columns"`) {
		t.Fatalf("results file content:\n%s", first)
	}
	if !strings.HasSuffix(first, "\n") {
		t.Error("results file must end in a newline")
	}
	if second := read(); second != first {
		t.Error("repeated runs must produce byte-identical results files")
	}
}

// TestJobSchedJSONGolden pins the jobsched experiment's JSON results file
// byte-for-byte: the queueing-delay columns are part of the stable output
// contract. Regenerate with go test ./cmd/dfexp -run JobSchedJSONGolden
// -update-golden after an intentional change.
func TestJobSchedJSONGolden(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runArgs(t, "-run", "jobsched", "-quick", "-jobsched", "fairshare",
		"-format", "json", "-results", dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "jobsched.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "jobsched_quick.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("jobsched JSON results drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, col := range []string{"wait p50", "wait p99", "makespan"} {
		if !strings.Contains(string(got), col) {
			t.Fatalf("results missing column %q", col)
		}
	}
}

// TestHedgeJSONGolden pins the hedge experiment's JSON results file
// byte-for-byte: the degraded-read and per-flow latency percentiles and
// the wasted-bytes accounting are part of the stable output contract.
// Regenerate with go test ./cmd/dfexp -run HedgeJSONGolden -update-golden
// after an intentional change.
func TestHedgeJSONGolden(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runArgs(t, "-run", "hedge", "-quick", "-seeds", "2",
		"-format", "json", "-results", dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "hedge.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "hedge_quick.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("hedge JSON results drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, col := range []string{"read p99", "flow p99", "wasted GB"} {
		if !strings.Contains(string(got), col) {
			t.Fatalf("results missing column %q", col)
		}
	}
}

// TestRepairJSONGolden pins the repair experiment's JSON results file
// byte-for-byte: the makespan, time-to-first-repair and time-to-full-
// redundancy columns are part of the stable output contract. Regenerate
// with go test ./cmd/dfexp -run RepairJSONGolden -update-golden after an
// intentional change.
func TestRepairJSONGolden(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := runArgs(t, "-run", "repair", "-quick", "-seeds", "2",
		"-format", "json", "-results", dir); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "repair.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "repair_quick.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("repair JSON results drifted from golden.\ngot:\n%s\nwant:\n%s", got, want)
	}
	for _, col := range []string{"first fix", "healed at", "read GB"} {
		if !strings.Contains(string(got), col) {
			t.Fatalf("results missing column %q", col)
		}
	}
}

func TestRunWritesOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.txt")
	_, _, err := runArgs(t, "-run", "fig5a", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig5a") {
		t.Fatal("out file missing results")
	}
}

func TestTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, _, err := runArgs(t, "-run", "fig3", "-trace", path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace file has no events")
	}
	var transfers int
	for _, e := range events {
		if !strings.HasPrefix(e.Run, "fig3") {
			t.Fatalf("event label %q lacks experiment prefix", e.Run)
		}
		if e.Type == trace.EvTransferEnd {
			transfers++
		}
	}
	if transfers == 0 {
		t.Fatal("fig3 trace must contain completed transfers")
	}
}

func TestRunErrors(t *testing.T) {
	_, _, err := runArgs(t, "-run", "nope")
	if err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if !strings.Contains(err.Error(), "valid IDs") || !strings.Contains(err.Error(), "fig3") {
		t.Errorf("unknown-ID error must list valid IDs, got: %v", err)
	}
	if _, _, err := runArgs(t); err == nil {
		t.Fatal("no action must fail")
	}
	if _, _, err := runArgs(t, "-bogus"); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestFlagErrorsGoToStderr(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(context.Background(), []string{"-bogus"}, &out, &errOut); err == nil {
		t.Fatal("unknown flag must fail")
	}
	if out.Len() != 0 {
		t.Errorf("flag errors leaked to stdout:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "flag provided but not defined") {
		t.Errorf("stderr missing flag error:\n%s", errOut.String())
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	err := run(ctx, []string{"-run", "fig7a", "-quick", "-seeds", "2"}, &out, &errOut)
	if err == nil {
		t.Fatal("cancelled context must abort the run")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error should stem from cancellation, got: %v", err)
	}
}
