package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fig3", "fig7a", "table1", "ext-lrc", "paper:"} {
		if !strings.Contains(got, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunOneText(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "fig5a"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "=== fig5a") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunCSVAndJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "fig5b", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "setting,LF norm,DF norm,DF vs LF") {
		t.Fatalf("csv output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-run", "fig5c", "-format", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"id":"fig5c"`) {
		t.Fatalf("json output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-run", "fig5a", "-format", "yaml"}, &out); err == nil {
		t.Fatal("unknown format must fail")
	}
}

func TestRunWritesOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.txt")
	var out strings.Builder
	if err := run([]string{"-run", "fig5a", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fig5a") {
		t.Fatal("out file missing results")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	if err := run(nil, &out); err == nil {
		t.Fatal("no action must fail")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}
