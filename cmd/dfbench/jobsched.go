// Job-storm benchmark suite (-suite jobsched): the indexed reducer
// cursor of the job-level scheduling layer against the seed runtime's
// full rescan, retained behind jobsched.Config.ReferenceReduceScan.
// Both sides run the same deterministic multi-tenant storm through the
// mapred simulator and produce identical traces (pinned by the
// equivalence tests in internal/mapred), so the delta is pure
// job-queue scanning cost.

package main

import (
	"fmt"
	"io"
	"time"

	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/workload"
)

// stormJobCounts are the workload scales: a moderate burst and a
// five-thousand-job storm where the full rescan's O(jobs) cost per
// free reduce slot shows.
var stormJobCounts = []int{200, 5000}

// buildStorm generates the deterministic storm workload for njobs.
func buildStorm(njobs int) (mapred.Config, []mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 8
	cfg.Racks = 2
	cfg.N, cfg.K = 4, 2
	cfg.NumBlocks = 64
	cfg.BlockSizeBytes = 16e6
	cfg.RackBps = netsim.Gbps
	cfg.Seed = 1

	tpl := mapred.DefaultJob()
	tpl.NumBlocks = 4
	tpl.MapTime = mapred.Dist{Mean: 3, Std: 0.3}
	tpl.ReduceTime = mapred.Dist{Mean: 2, Std: 0.2}
	tpl.NumReduceTasks = 1
	tpl.ShuffleRatio = 0.05

	jobs, err := workload.GenerateStorm(workload.StormOptions{
		NumJobs: njobs,
		Tenants: []workload.TenantSpec{
			{Name: "alpha", Weight: 4, Share: 0.5},
			{Name: "beta", Weight: 2, Share: 0.3},
			{Name: "gamma", Weight: 1, Share: 0.2},
		},
		MeanInterArrival: 0.5,
		Template:         tpl,
		VaryBlocks:       4,
		Seed:             42,
	})
	if err != nil {
		panic(fmt.Sprintf("dfbench: storm: %v", err))
	}
	return cfg, jobs
}

// runStorm simulates one full storm and returns the simulated bytes
// moved. The optimized side uses the indexed reducer cursor; the
// reference side the seed runtime's full rescan.
func runStorm(cfg mapred.Config, jobs []mapred.JobSpec, optimized bool) float64 {
	cfg.JobSched = jobsched.Config{ReferenceReduceScan: !optimized}
	res, err := mapred.Run(cfg, jobs)
	if err != nil {
		panic(fmt.Sprintf("dfbench: storm run: %v", err))
	}
	return res.BytesMoved
}

// jobschedResults appends the storm suite to the report: one case per
// job count, timed for the cursor ("indexed") and full-rescan
// ("reference") variants. MB/s is simulated traffic scheduled per
// wall-clock second.
func jobschedResults(rep *Report, minTime time.Duration, stderr io.Writer) {
	for _, njobs := range stormJobCounts {
		name := fmt.Sprintf("jobsched-storm/%d-jobs", njobs)
		cfg, jobs := buildStorm(njobs)
		simBytes := int64(runStorm(cfg, jobs, true))
		idx := measure(simBytes, minTime, func(n int) {
			for i := 0; i < n; i++ {
				runStorm(cfg, jobs, true)
			}
		})
		ref := measure(simBytes, minTime, func(n int) {
			for i := 0; i < n; i++ {
				runStorm(cfg, jobs, false)
			}
		})
		idx.Name, idx.Variant = name, "indexed"
		ref.Name, ref.Variant = name, "reference"
		rep.Results = append(rep.Results, idx, ref)
		if idx.NsPerOp > 0 {
			rep.Speedups[name] = ref.NsPerOp / idx.NsPerOp
		}
		fmt.Fprintf(stderr, "%-28s indexed %8.1f MB/s  reference %8.1f MB/s  speedup %.2fx\n",
			name, idx.MBPerS, ref.MBPerS, rep.Speedups[name])
	}
}
