// Background-repair benchmark suite (-suite repair): the healer running
// against a foreground MapReduce job at several bandwidth caps, timed
// against the repair-off baseline. Each case times the full simulation
// and records the simulated healing outcome (time to first fix, time to
// full redundancy, volume read), so the report doubles as the
// throttle-trade-off quantification for BENCH_repair.json.

package main

import (
	"fmt"
	"io"
	"time"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/repair"
	"degradedfirst/internal/topology"
)

// RepairCase is one simulated repair scenario's healing outcome, carried
// in the report next to the wall-clock timings. FirstFix and HealedAt
// are seconds after the failure; both are -1 for the repair-off case.
type RepairCase struct {
	Throttle    string  `json:"throttle"`
	Fraction    float64 `json:"fraction"`
	Makespan    float64 `json:"makespan_s"`
	FirstFix    float64 `json:"first_fix_s"`
	HealedAt    float64 `json:"healed_at_s"`
	Blocks      int     `json:"blocks_repaired"`
	RepairBytes float64 `json:"repair_bytes"`
}

// repairBenchThrottles sweeps the healer's rate cap as a fraction of a
// node NIC's bandwidth; 0 is the repair-off baseline every other case is
// timed against.
var repairBenchThrottles = []struct {
	name     string
	fraction float64
}{
	{"off", 0},
	{"5pct", 0.05},
	{"25pct", 0.25},
	{"100pct", 1.0},
}

// buildRepair is the repair experiment's contended scenario at benchmark
// scale: NIC-bottlenecked 12-node cluster, (6,4) code, one node failing
// at t=10 s, map-only job under locality-first scheduling.
func buildRepair(fraction float64) (mapred.Config, []mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 12
	cfg.Racks = 3
	cfg.MapSlotsPerNode = 2
	cfg.N, cfg.K = 6, 4
	cfg.NumBlocks = 240
	cfg.BlockSizeBytes = 64e6
	cfg.NodeBps = 5 * netsim.Mbps * 64
	cfg.RackBps = netsim.Gbps
	cfg.FailNodes = []topology.NodeID{0}
	cfg.FailAt = 10
	if fraction > 0 {
		cfg.Repair = repair.Config{Enabled: true, RateFraction: fraction}
	}
	cfg.Seed = 1

	job := mapred.DefaultJob()
	job.MapTime = mapred.Dist{Mean: 4, Std: 0.4}
	job.NumReduceTasks = 0
	return cfg, []mapred.JobSpec{job}
}

// runRepairCase simulates one scenario and returns its outcome.
func runRepairCase(fraction float64) *mapred.Result {
	cfg, jobs := buildRepair(fraction)
	res, err := mapred.Run(cfg, jobs)
	if err != nil {
		panic(fmt.Sprintf("dfbench: repair run: %v", err))
	}
	return res
}

// repairResults appends the repair suite to the report: each throttle
// timed against the repair-off baseline (the speedup column is the
// simulator's wall-clock cost of the healer — below 1.0 means repair
// simulation costs time), plus the simulated healing outcome per case.
func repairResults(rep *Report, minTime time.Duration, stderr io.Writer) {
	baseRes := runRepairCase(0)
	base := measure(int64(baseRes.BytesMoved), minTime, func(n int) {
		for i := 0; i < n; i++ {
			runRepairCase(0)
		}
	})
	failAt, _ := buildRepair(0)
	for _, th := range repairBenchThrottles {
		name := fmt.Sprintf("repair/%s", th.name)
		res := runRepairCase(th.fraction)

		c := RepairCase{
			Throttle: th.name,
			Fraction: th.fraction,
			Makespan: res.Makespan,
			FirstFix: -1,
			HealedAt: -1,
		}
		if st := res.Repair; st != nil {
			c.Blocks = st.BlocksRepaired
			c.RepairBytes = st.RepairBytes
			if st.FirstRepairAt >= 0 {
				c.FirstFix = st.FirstRepairAt - failAt.FailAt
			}
			if st.FullRedundancyAt >= 0 {
				c.HealedAt = st.FullRedundancyAt - failAt.FailAt
			}
		}
		rep.Repair = append(rep.Repair, c)

		timed := measure(int64(res.BytesMoved), minTime, func(n int) {
			for i := 0; i < n; i++ {
				runRepairCase(th.fraction)
			}
		})
		timed.Name, timed.Variant = name, "healer"
		ref := base
		ref.Name, ref.Variant = name, "baseline"
		rep.Results = append(rep.Results, timed, ref)
		if timed.NsPerOp > 0 {
			rep.Speedups[name] = ref.NsPerOp / timed.NsPerOp
		}
		fmt.Fprintf(stderr, "%-16s makespan %6.1fs  first fix %7.1fs  healed %8.1fs  read %6.2f GB  sim %8.1f MB/s\n",
			name, c.Makespan, c.FirstFix, c.HealedAt, c.RepairBytes/1e9, timed.MBPerS)
	}
}
