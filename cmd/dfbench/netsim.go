// Flow-churn benchmark suite (-suite netsim): the optimized transfer path
// — incremental max-min solver, lazy event cancellation, batched admission
// — against the reference configuration retained in the simulator (full
// recomputation, eager heap removal, one StartFlow per transfer). Both
// sides run the same deterministic workload of fan-in bursts and mid-run
// cancellations, and both must drain completely; the virtual-clock outcome
// is identical by construction (see internal/netsim's equivalence tests),
// so the delta is pure scheduling cost.

package main

import (
	"fmt"
	"io"
	"time"

	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

// churnFlowCounts are the workload scales: light (the common per-heartbeat
// case), medium, and a heavy shuffle storm.
var churnFlowCounts = []int{10, 100, 1000}

const churnBurst = 10 // flows admitted per batch (a reducer fan-in)

// runChurn drives one complete churn workload of nflows transfers over the
// paper's 40-node/4-rack cluster and returns the simulated bytes moved.
// The optimized side uses the incremental solver, lazy cancellation, and
// StartFlows batches; the reference side the retained baselines.
func runChurn(nflows int, optimized bool) float64 {
	cluster := topology.MustNew(topology.Config{Nodes: 40, Racks: 4, MapSlotsPerNode: 1})
	return runChurnOn(cluster, netsim.Config{
		NodeBps: 1000 * netsim.Mbps,
		RackBps: 1000 * netsim.Mbps,
		CoreBps: 4000 * netsim.Mbps,
	}, nflows, optimized)
}

// runChurnOn is runChurn over an arbitrary cluster shape: the same
// deterministic burst/cancel workload, with sources and destinations
// drawn over all of the cluster's nodes.
func runChurnOn(cluster *topology.Cluster, cfg netsim.Config, nflows int, optimized bool) float64 {
	eng := sim.New()
	eng.SetEagerCancel(!optimized)
	nodes := uint64(cluster.NumNodes())
	net, err := netsim.New(eng, cluster, cfg)
	if err != nil {
		panic(fmt.Sprintf("dfbench: netsim: %v", err))
	}
	if optimized {
		net.SetSolver(netsim.IncrementalSolver)
	} else {
		net.SetSolver(netsim.ReferenceSolver)
	}

	rng := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var created []*netsim.Flow
	for i := 0; i < nflows; i += churnBurst {
		at := float64(i) * 0.002
		k := churnBurst
		if k > nflows-i {
			k = nflows - i
		}
		dst := topology.NodeID(next() % nodes)
		reqs := make([]netsim.FlowReq, k)
		for j := range reqs {
			reqs[j] = netsim.FlowReq{
				Src:   topology.NodeID(next() % nodes),
				Dst:   dst,
				Bytes: float64(1+next()%64) * 1e6,
			}
		}
		eng.ScheduleAt(at, func() {
			if optimized {
				created = append(created, net.StartFlows(reqs)...)
			} else {
				for _, r := range reqs {
					created = append(created, net.StartFlow(r.Src, r.Dst, r.Bytes, r.Done))
				}
			}
		})
		// Every other burst, abort one earlier flow mid-transfer (failure
		// recovery exercising the cancellation path).
		if i/churnBurst%2 == 1 {
			victim := int(next() >> 33) // keep it non-negative
			eng.ScheduleAt(at+0.001, func() {
				if len(created) > 0 {
					net.Cancel(created[victim%len(created)])
				}
			})
		}
	}
	eng.Run()
	if err := net.Drained(); err != nil {
		panic(fmt.Sprintf("dfbench: churn workload did not drain: %v", err))
	}
	return net.BytesMoved
}

// netsimResults appends the churn suite to the report: one case per flow
// count, timed for the optimized ("incremental") and reference variants,
// plus a 1k-node fat-tree scale point (the 10k-node/100k-flow storm
// lives in the topology suite). MB/s here is simulated traffic scheduled
// per wall-clock second.
func netsimResults(rep *Report, minTime time.Duration, stderr io.Writer) {
	for _, nflows := range churnFlowCounts {
		name := fmt.Sprintf("netsim-churn/%d-flows", nflows)
		churnCase(rep, minTime, stderr, name, nflows, func(optimized bool) float64 {
			return runChurn(nflows, optimized)
		})
	}
	cluster := scaleCluster(1000)
	churnCase(rep, minTime, stderr, "netsim-scale/1k-nodes-10k-flows", 10000, func(optimized bool) float64 {
		return runChurnOn(cluster, netsim.Config{}, 10000, optimized)
	})
}

// churnCase times one churn workload through both solver configurations
// and appends the pair to the report.
func churnCase(rep *Report, minTime time.Duration, stderr io.Writer, name string, nflows int, run func(optimized bool) float64) {
	simBytes := int64(run(true))
	inc := measure(simBytes, minTime, func(n int) {
		for i := 0; i < n; i++ {
			run(true)
		}
	})
	ref := measure(simBytes, minTime, func(n int) {
		for i := 0; i < n; i++ {
			run(false)
		}
	})
	inc.Name, inc.Variant = name, "incremental"
	ref.Name, ref.Variant = name, "reference"
	rep.Results = append(rep.Results, inc, ref)
	if inc.NsPerOp > 0 {
		rep.Speedups[name] = ref.NsPerOp / inc.NsPerOp
	}
	fmt.Fprintf(stderr, "%-32s incremental %8.1f MB/s  reference %8.1f MB/s  speedup %.2fx\n",
		name, inc.MBPerS, ref.MBPerS, rep.Speedups[name])
}
