// Hedged degraded-read benchmark suite (-suite hedge): the hedged fan-in
// runtime (k+Δ races, deadline hedging) against the unhedged baseline,
// under both network contention models. Each case times the full
// simulation and records the simulated degraded-read latency percentiles
// and the extra network volume the policy moved, so the report doubles as
// the latency/waste quantification for BENCH_hedge.json.

package main

import (
	"fmt"
	"io"
	"time"

	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/runtime"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

// HedgeCase is one simulated hedge scenario's latency/volume outcome,
// carried in the report next to the wall-clock timings.
type HedgeCase struct {
	Net      string  `json:"net"`
	Policy   string  `json:"policy"`
	Degraded int     `json:"degraded_reads"`
	ReadP50  float64 `json:"read_p50_s"`
	ReadP99  float64 `json:"read_p99_s"`
	Moved    float64 `json:"moved_bytes"`
	Wasted   float64 `json:"wasted_bytes"`
}

// hedgeBenchPolicies sweeps Δ∈{0,1,2} plus deadline hedging at the p90 of
// observed per-flow latencies.
var hedgeBenchPolicies = []struct {
	name   string
	policy runtime.HedgePolicy
}{
	{"delta0", runtime.HedgePolicy{}},
	{"delta1", runtime.HedgePolicy{Extra: 1}},
	{"delta2", runtime.HedgePolicy{Extra: 2}},
	{"hedge-p90", runtime.HedgePolicy{HedgeQuantile: 0.9, HedgeMinSamples: 8}},
}

var hedgeBenchModes = []netsim.Mode{netsim.ExclusiveHold, netsim.FluidFairSharing}

// buildHedge is the failure-mode scenario of the hedge experiment at
// benchmark scale: NIC-bottlenecked 12-node cluster, (6,3) code, one
// failed node, map-only job, locality-first scheduling so the degraded
// fan-ins cluster at the end of the map phase.
func buildHedge(mode netsim.Mode, policy runtime.HedgePolicy) (mapred.Config, []mapred.JobSpec) {
	cfg := mapred.DefaultConfig()
	cfg.Nodes = 12
	cfg.Racks = 2
	cfg.MapSlotsPerNode = 1
	cfg.N, cfg.K = 6, 3
	cfg.NumBlocks = 240
	cfg.BlockSizeBytes = 64e6
	cfg.NodeBps = 5 * netsim.Mbps * 64
	cfg.RackBps = netsim.Gbps
	cfg.NetMode = mode
	cfg.FailNodes = []topology.NodeID{0}
	cfg.Hedge = policy
	cfg.Seed = 1

	job := mapred.DefaultJob()
	job.MapTime = mapred.Dist{Mean: 2, Std: 0.2}
	job.NumReduceTasks = 0
	return cfg, []mapred.JobSpec{job}
}

// runHedgeCase simulates one scenario and returns its outcome.
func runHedgeCase(mode netsim.Mode, policy runtime.HedgePolicy) *mapred.Result {
	cfg, jobs := buildHedge(mode, policy)
	res, err := mapred.Run(cfg, jobs)
	if err != nil {
		panic(fmt.Sprintf("dfbench: hedge run: %v", err))
	}
	return res
}

// hedgeResults appends the hedge suite to the report: per network mode,
// each policy timed against the unhedged baseline (the speedup column is
// the simulator's wall-clock cost of the hedging machinery), plus the
// simulated latency percentiles and wasted volume per case.
func hedgeResults(rep *Report, minTime time.Duration, stderr io.Writer) {
	for _, mode := range hedgeBenchModes {
		baseRes := runHedgeCase(mode, hedgeBenchPolicies[0].policy)
		base := measure(int64(baseRes.BytesMoved), minTime, func(n int) {
			for i := 0; i < n; i++ {
				runHedgeCase(mode, hedgeBenchPolicies[0].policy)
			}
		})
		for _, p := range hedgeBenchPolicies {
			name := fmt.Sprintf("hedge-%v/%s", mode, p.name)
			res := runHedgeCase(mode, p.policy)

			var reads []float64
			for j := range res.Jobs {
				reads = append(reads, res.Jobs[j].DegradedReadTimes()...)
			}
			q := stats.Quantiles(reads, 0.5, 0.99)
			rep.Hedge = append(rep.Hedge, HedgeCase{
				Net:      mode.String(),
				Policy:   p.name,
				Degraded: len(reads),
				ReadP50:  q[0],
				ReadP99:  q[1],
				Moved:    res.BytesMoved,
				Wasted:   res.WastedBytes,
			})

			timed := measure(int64(res.BytesMoved), minTime, func(n int) {
				for i := 0; i < n; i++ {
					runHedgeCase(mode, p.policy)
				}
			})
			timed.Name, timed.Variant = name, "hedged"
			ref := base
			ref.Name, ref.Variant = name, "baseline"
			rep.Results = append(rep.Results, timed, ref)
			if timed.NsPerOp > 0 {
				rep.Speedups[name] = ref.NsPerOp / timed.NsPerOp
			}
			fmt.Fprintf(stderr, "%-24s read p50 %6.1fs  p99 %6.1fs  wasted %6.1f MB  sim %8.1f MB/s\n",
				name, q[0], q[1], res.WastedBytes/1e6, timed.MBPerS)
		}
	}
}
