package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunWritesValidReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	// Tiny mintime and shard: this is a smoke test of the harness, not a
	// measurement.
	err := run([]string{"-out", out, "-mintime", "1ms", "-shard", "4096"}, io.Discard, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.ShardBytes != 4096 || rep.GOOS == "" || rep.GOARCH == "" || rep.GOMAXPROCS < 1 {
		t.Fatalf("malformed report header: %+v", rep)
	}
	if len(rep.Results) == 0 || len(rep.Speedups) == 0 {
		t.Fatal("report has no results")
	}
	names := map[string]bool{}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.MBPerS <= 0 || r.N < 1 {
			t.Fatalf("implausible result: %+v", r)
		}
		if r.Variant != "kernel" && r.Variant != "scalar" {
			t.Fatalf("unknown variant %q", r.Variant)
		}
		names[r.Name] = true
	}
	for _, want := range []string{
		"mulslice/dense", "mulslice/sparse50", "mulslice/xor",
		"encode/rs14-10", "reconstruct/rs14-10", "reconstruct/lrc-local",
		"degraded-read/rs14-10",
	} {
		if !names[want] {
			t.Fatalf("missing case %q", want)
		}
		if rep.Speedups[want] <= 0 {
			t.Fatalf("missing speedup for %q", want)
		}
	}
}

// TestHedgeSuiteReport smoke-runs the hedge suite and checks the report
// carries both the wall-clock timings and the simulated hedge outcomes:
// every mode/policy case present, and under the queueing (hold) model the
// k+Δ races pull the p99 degraded-read latency strictly below the
// unhedged baseline.
func TestHedgeSuiteReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	err := run([]string{"-suite", "hedge", "-out", out, "-mintime", "1ms"}, io.Discard, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 16 { // 2 modes x 4 policies x (hedged, baseline)
		t.Fatalf("results = %d, want 16", len(rep.Results))
	}
	cases := map[string]HedgeCase{}
	for _, c := range rep.Hedge {
		cases[c.Net+"/"+c.Policy] = c
		if c.Degraded == 0 || c.ReadP50 <= 0 || c.ReadP99 < c.ReadP50 {
			t.Fatalf("implausible hedge case: %+v", c)
		}
	}
	if len(cases) != 8 {
		t.Fatalf("hedge cases = %d, want 8", len(cases))
	}
	for _, key := range []string{"hold/delta1", "hold/delta2"} {
		if got, base := cases[key].ReadP99, cases["hold/delta0"].ReadP99; got >= base {
			t.Errorf("%s p99 %.1f not below unhedged baseline %.1f", key, got, base)
		}
	}
	if cases["hold/delta0"].Wasted != 0 || cases["fluid/delta0"].Wasted != 0 {
		t.Error("unhedged cases must waste nothing")
	}
	if cases["fluid/delta1"].Wasted <= 0 {
		t.Error("fluid delta1 must report extra bytes moved")
	}
}

// TestRepairSuiteReport smoke-runs the repair suite and checks the
// report carries both the wall-clock timings and the simulated healing
// outcomes: every throttle case present, more repair bandwidth healing
// strictly sooner, and the off baseline repairing nothing.
func TestRepairSuiteReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	err := run([]string{"-suite", "repair", "-out", out, "-mintime", "1ms"}, io.Discard, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 8 { // 4 throttles x (healer, baseline)
		t.Fatalf("results = %d, want 8", len(rep.Results))
	}
	cases := map[string]RepairCase{}
	for _, c := range rep.Repair {
		cases[c.Throttle] = c
		if c.Makespan <= 0 {
			t.Fatalf("implausible repair case: %+v", c)
		}
	}
	if len(cases) != 4 {
		t.Fatalf("repair cases = %d, want 4", len(cases))
	}
	off := cases["off"]
	if off.Blocks != 0 || off.RepairBytes != 0 || off.HealedAt != -1 || off.FirstFix != -1 {
		t.Fatalf("off baseline must repair nothing: %+v", off)
	}
	prev := -1.0
	for _, name := range []string{"5pct", "25pct", "100pct"} {
		c := cases[name]
		if c.Blocks == 0 || c.RepairBytes <= 0 || c.HealedAt <= 0 || c.FirstFix < 0 || c.FirstFix > c.HealedAt {
			t.Fatalf("%s: implausible healing outcome: %+v", name, c)
		}
		if prev >= 0 && c.HealedAt >= prev {
			t.Errorf("%s healed at %.1f, not below the slower throttle's %.1f", name, c.HealedAt, prev)
		}
		prev = c.HealedAt
	}
}

func TestRunRejectsBadShard(t *testing.T) {
	if err := run([]string{"-shard", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("shard=0 must fail")
	}
}

func TestMeasureScalesIterations(t *testing.T) {
	var total int
	r := measure(100, 5*time.Millisecond, func(n int) {
		total += n
		time.Sleep(time.Duration(n) * 100 * time.Microsecond)
	})
	if r.N < 2 {
		t.Fatalf("measure never grew the batch: %+v", r)
	}
	if r.NsPerOp <= 0 || r.MBPerS <= 0 {
		t.Fatalf("implausible measurement: %+v", r)
	}
}
