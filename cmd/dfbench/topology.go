// Multi-tier scale suite (-suite topology): how the sim core behaves at
// 10k nodes. Two families of cases:
//
//   - topology-build: constructing the netsim link graph over a fat-tree
//     cluster. The "lazy" variant is the production path (names derived
//     on demand from (kind, index)); the "eager-names" variant
//     additionally materializes every link name, which is what the old
//     construction paid up front — the delta is the lazy-naming win.
//   - scale-churn: the deterministic burst/cancel churn workload of the
//     netsim suite, scaled to 1k and 10k-node fat trees with a
//     100k-flow storm, run through the incremental solver. MB/s is
//     simulated traffic scheduled per wall-clock second; alloc bytes
//     per op expose the interned-path and slab-link savings.
package main

import (
	"fmt"
	"io"
	"time"

	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sim"
	"degradedfirst/internal/topology"
)

// scaleCluster builds the fat-tree cluster for a scale point: 4:1 edge
// and 2:1 pod oversubscription over gigabit NICs, nodes/100 edges of
// 100 nodes each grouped 10 edges to a pod.
func scaleCluster(nodes int) *topology.Cluster {
	if nodes%1000 != 0 {
		panic(fmt.Sprintf("dfbench: scale cluster size %d not a multiple of 1000", nodes))
	}
	spec, err := topology.FatTree(topology.FatTreeConfig{
		Pods:         nodes / 1000,
		EdgesPerPod:  10,
		NodesPerEdge: 100,
		NodeBps:      netsim.Gbps,
		EdgeOversub:  4,
		PodOversub:   2,
	})
	if err != nil {
		panic(fmt.Sprintf("dfbench: scale spec: %v", err))
	}
	c, err := topology.NewFromSpec(spec, 2, 1)
	if err != nil {
		panic(fmt.Sprintf("dfbench: scale cluster: %v", err))
	}
	return c
}

// topologyResults appends the scale suite: construction at 1k/10k nodes
// and the scaled churn storms. scaleFlows sizes the storm (the CI smoke
// run shrinks it; the committed artifact uses the default 100k).
func topologyResults(rep *Report, minTime time.Duration, scaleFlows int, stderr io.Writer) {
	for _, nodes := range []int{1000, 10000} {
		cluster := scaleCluster(nodes)
		name := fmt.Sprintf("topology-build/%dk-nodes", nodes/1000)
		lazy := measure(0, minTime, func(n int) {
			for i := 0; i < n; i++ {
				if _, err := netsim.New(sim.New(), cluster, netsim.Config{}); err != nil {
					panic(fmt.Sprintf("dfbench: build: %v", err))
				}
			}
		})
		eager := measure(0, minTime, func(n int) {
			for i := 0; i < n; i++ {
				net, err := netsim.New(sim.New(), cluster, netsim.Config{})
				if err != nil {
					panic(fmt.Sprintf("dfbench: build: %v", err))
				}
				net.DebugLinks() // force every link name, as eager naming did
			}
		})
		lazy.Name, lazy.Variant = name, "lazy"
		eager.Name, eager.Variant = name, "eager-names"
		rep.Results = append(rep.Results, lazy, eager)
		if lazy.NsPerOp > 0 {
			rep.Speedups[name] = eager.NsPerOp / lazy.NsPerOp
		}
		fmt.Fprintf(stderr, "%-32s lazy %10.0f ns/op (%d B/op)  eager-names %10.0f ns/op  speedup %.2fx\n",
			name, lazy.NsPerOp, lazy.AllocBytes, eager.NsPerOp, rep.Speedups[name])
	}

	for _, nodes := range []int{1000, 10000} {
		cluster := scaleCluster(nodes)
		name := fmt.Sprintf("scale-churn/%dk-nodes-%dk-flows", nodes/1000, scaleFlows/1000)
		simBytes := int64(runChurnOn(cluster, netsim.Config{}, scaleFlows, true))
		res := measure(simBytes, minTime, func(n int) {
			for i := 0; i < n; i++ {
				runChurnOn(cluster, netsim.Config{}, scaleFlows, true)
			}
		})
		res.Name, res.Variant = name, "incremental"
		rep.Results = append(rep.Results, res)
		fmt.Fprintf(stderr, "%-32s incremental %8.1f MB/s  %12.0f ns/op  %d B/op\n",
			name, res.MBPerS, res.NsPerOp, res.AllocBytes)
	}
}
