// Command dfbench measures the simulator's performance-critical paths and
// writes the results as JSON. Every workload is timed twice — once through
// the optimized implementation and once through the retained reference —
// so each report carries its own before/after numbers.
//
// Four suites are available:
//
//   - erasure (default): the GF(256) bulk kernels and the erasure/DFS
//     paths built on them (BENCH_erasure.json by convention);
//   - netsim: flow-churn scheduling through the incremental max-min
//     solver, lazy cancellation, and batched admission against the
//     reference configuration (BENCH_netsim.json by convention);
//   - jobsched: multi-tenant job storms through the job-level
//     scheduler's indexed reducer cursor against the retained full
//     rescan (BENCH_jobsched.json by convention);
//   - hedge: hedged degraded-read fan-ins (k+Δ races, deadline hedging)
//     against the unhedged baseline, with simulated latency percentiles
//     and wasted volume per case (BENCH_hedge.json by convention);
//   - topology: multi-tier scale — 10k-node network construction with
//     lazy link naming, and fat-tree flow churn at 1k/10k nodes with
//     100k-flow storms (BENCH_topology.json by convention);
//   - repair: the background healer competing with a foreground job at
//     several bandwidth caps against the repair-off baseline, with the
//     simulated healing outcome per case (BENCH_repair.json by
//     convention).
//
// Usage:
//
//	dfbench                      # print JSON to stdout
//	dfbench -out BENCH_erasure.json
//	dfbench -suite netsim -out BENCH_netsim.json
//	dfbench -suite jobsched -out BENCH_jobsched.json
//	dfbench -suite hedge -out BENCH_hedge.json
//	dfbench -suite topology -out BENCH_topology.json
//	dfbench -suite repair -out BENCH_repair.json
//	dfbench -mintime 500ms       # time each case for at least 500ms
//	dfbench -shard 65536         # shard size in bytes (erasure suite)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/gf256"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "dfbench:", err)
		os.Exit(1)
	}
}

// Result is one timed case.
type Result struct {
	Name    string  `json:"name"`
	Variant string  `json:"variant"` // "kernel" or "scalar"
	Bytes   int64   `json:"bytes_per_op"`
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s"`
	N       int     `json:"iterations"`
	// AllocBytes is the heap allocated per op (final batch average),
	// the figure of merit for the construction and churn scale cases.
	AllocBytes int64 `json:"alloc_bytes_per_op,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	ShardBytes int                `json:"shard_bytes"`
	Results    []Result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
	// Hedge carries the hedge suite's simulated latency/waste outcomes
	// (empty for the other suites).
	Hedge []HedgeCase `json:"hedge,omitempty"`
	// Repair carries the repair suite's simulated healing outcomes
	// (empty for the other suites).
	Repair []RepairCase `json:"repair,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dfbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	minTime := fs.Duration("mintime", 200*time.Millisecond, "minimum measurement time per case")
	shard := fs.Int("shard", 64*1024, "shard size in bytes")
	suite := fs.String("suite", "erasure", `benchmark suite: "erasure", "netsim", "jobsched", "hedge", "topology" or "repair"`)
	scaleFlows := fs.Int("scaleflows", 100000, "flow count of the topology suite's churn storm")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shard <= 0 {
		return fmt.Errorf("shard size must be positive, got %d", *shard)
	}
	switch *suite {
	case "erasure", "netsim", "jobsched", "hedge", "topology", "repair":
	default:
		return fmt.Errorf("unknown suite %q (want erasure, netsim, jobsched, hedge, topology or repair)", *suite)
	}

	rep := Report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ShardBytes: *shard,
		Speedups:   map[string]float64{},
	}

	switch *suite {
	case "netsim":
		netsimResults(&rep, *minTime, stderr)
	case "jobsched":
		jobschedResults(&rep, *minTime, stderr)
	case "hedge":
		hedgeResults(&rep, *minTime, stderr)
	case "repair":
		repairResults(&rep, *minTime, stderr)
	case "topology":
		if *scaleFlows <= 0 {
			return fmt.Errorf("scaleflows must be positive, got %d", *scaleFlows)
		}
		topologyResults(&rep, *minTime, *scaleFlows, stderr)
	default:
		cases := benchCases(*shard)
		for _, c := range cases {
			kernel := measure(c.bytes, *minTime, c.kernel)
			scalar := measure(c.bytes, *minTime, c.scalar)
			kernel.Name, kernel.Variant = c.name, "kernel"
			scalar.Name, scalar.Variant = c.name, "scalar"
			rep.Results = append(rep.Results, kernel, scalar)
			if kernel.NsPerOp > 0 {
				rep.Speedups[c.name] = scalar.NsPerOp / kernel.NsPerOp
			}
			fmt.Fprintf(stderr, "%-28s kernel %8.1f MB/s  scalar %8.1f MB/s  speedup %.2fx\n",
				c.name, kernel.MBPerS, scalar.MBPerS, rep.Speedups[c.name])
		}
	}

	enc, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// measure runs fn repeatedly, doubling the iteration count until the batch
// takes at least minTime, then reports per-op cost (time and heap bytes)
// from the final batch.
func measure(bytes int64, minTime time.Duration, fn func(n int)) Result {
	n := 1
	var ms1, ms2 runtime.MemStats
	for {
		runtime.ReadMemStats(&ms1)
		start := time.Now()
		fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms2)
		if elapsed >= minTime || n >= 1<<30 {
			ns := float64(elapsed.Nanoseconds()) / float64(n)
			mbps := 0.0
			if ns > 0 {
				mbps = float64(bytes) / ns * 1e9 / (1 << 20)
			}
			return Result{Bytes: bytes, NsPerOp: ns, MBPerS: mbps, N: n,
				AllocBytes: int64(ms2.TotalAlloc-ms1.TotalAlloc) / int64(n)}
		}
		if elapsed <= 0 {
			n *= 1024
			continue
		}
		// Aim past minTime with some headroom, at most 100x at a time.
		grow := int(float64(minTime)/float64(elapsed)*1.2) + 1
		if grow > 100 {
			grow = 100
		}
		n *= grow
	}
}

type benchCase struct {
	name   string
	bytes  int64 // bytes processed per op
	kernel func(n int)
	scalar func(n int)
}

// fill writes a deterministic byte pattern; zeroFrac of the positions are
// forced to zero (the regime where the scalar kernel's data-dependent
// branch mispredicts).
func fill(b []byte, seed byte, zeroFrac float64) {
	x := uint32(seed) + 1
	cut := uint32(zeroFrac * 256)
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 8)
		if uint32(byte(x>>16)) < cut {
			b[i] = 0
		}
	}
}

func benchCases(shard int) []benchCase {
	denseSrc := make([]byte, shard)
	fill(denseSrc, 1, 0)
	sparseSrc := make([]byte, shard)
	fill(sparseSrc, 2, 0.5)
	dst := make([]byte, shard)

	cases := []benchCase{
		{
			name:  "mulslice/dense",
			bytes: int64(shard),
			kernel: func(n int) {
				for i := 0; i < n; i++ {
					gf256.MulSlice(0x57, denseSrc, dst)
				}
			},
			scalar: func(n int) {
				for i := 0; i < n; i++ {
					gf256.RefMulSlice(0x57, denseSrc, dst)
				}
			},
		},
		{
			name:  "mulslice/sparse50",
			bytes: int64(shard),
			kernel: func(n int) {
				for i := 0; i < n; i++ {
					gf256.MulSlice(0x57, sparseSrc, dst)
				}
			},
			scalar: func(n int) {
				for i := 0; i < n; i++ {
					gf256.RefMulSlice(0x57, sparseSrc, dst)
				}
			},
		},
		{
			name:  "mulslice/xor",
			bytes: int64(shard),
			kernel: func(n int) {
				for i := 0; i < n; i++ {
					gf256.MulSlice(1, denseSrc, dst)
				}
			},
			scalar: func(n int) {
				for i := 0; i < n; i++ {
					gf256.RefMulSlice(1, denseSrc, dst)
				}
			},
		},
	}

	cases = append(cases, encodeCase(shard), reconstructCase(shard), lrcLocalCase(shard), degradedReadCase(shard))
	return cases
}

// encodeCase: full RS(14,10) stripe parity generation. The scalar variant
// drives the retained reference over the code's real encoding rows, so both
// sides do identical arithmetic.
func encodeCase(shard int) benchCase {
	code := erasure.MustNew(14, 10)
	native := make([][]byte, 10)
	for i := range native {
		native[i] = make([]byte, shard)
		fill(native[i], byte(i+1), 0)
	}
	rows := make([][]byte, code.ParityShards())
	for i := range rows {
		rows[i] = code.EncodingRow(10 + i)
	}
	parity := make([][]byte, len(rows))
	for i := range parity {
		parity[i] = make([]byte, shard)
	}
	return benchCase{
		name:  "encode/rs14-10",
		bytes: int64(10 * shard),
		kernel: func(n int) {
			for i := 0; i < n; i++ {
				if _, err := code.Encode(native); err != nil {
					panic(fmt.Sprintf("dfbench: encode: %v", err))
				}
			}
		},
		scalar: func(n int) {
			for i := 0; i < n; i++ {
				for r, row := range rows {
					p := parity[r]
					for j := range p {
						p[j] = 0
					}
					for j, coeff := range row {
						gf256.RefMulSlice(coeff, native[j], p)
					}
				}
			}
		},
	}
}

// reconstructCase: degraded decode of one lost RS(14,10) data block from 10
// surviving shards (general GF coefficients).
func reconstructCase(shard int) benchCase {
	code := erasure.MustNew(14, 10)
	native := make([][]byte, 10)
	for i := range native {
		native[i] = make([]byte, shard)
		fill(native[i], byte(i+1), 0)
	}
	stripe, err := code.EncodeStripe(native)
	if err != nil {
		panic(fmt.Sprintf("dfbench: encode stripe: %v", err))
	}
	srcIdx := make([]int, 0, 10)
	sources := make([][]byte, 0, 10)
	for i := 1; i < 14 && len(srcIdx) < 10; i++ {
		srcIdx = append(srcIdx, i)
		sources = append(sources, stripe[i])
	}
	// The scalar side replays the same decode coefficients the kernel path
	// computes, obtained by reconstructing once and solving the system via
	// the matrix layer.
	coeffs := decodeCoeffs(code, 0, srcIdx)
	out := make([]byte, shard)
	return benchCase{
		name:  "reconstruct/rs14-10",
		bytes: int64(10 * shard),
		kernel: func(n int) {
			for i := 0; i < n; i++ {
				if _, err := code.ReconstructBlock(0, srcIdx, sources); err != nil {
					panic(fmt.Sprintf("dfbench: reconstruct: %v", err))
				}
			}
		},
		scalar: func(n int) {
			for i := 0; i < n; i++ {
				for j := range out {
					out[j] = 0
				}
				for j, c := range coeffs {
					gf256.RefMulSlice(c, sources[j], out)
				}
			}
		},
	}
}

// lrcLocalCase: LRC(12,2,2) local-group repair (pure XOR of the group).
func lrcLocalCase(shard int) benchCase {
	lrc := erasure.MustNewLRC(12, 2, 2)
	data := make([][]byte, 12)
	for i := range data {
		data[i] = make([]byte, shard)
		fill(data[i], byte(i+30), 0)
	}
	stripe, err := lrc.EncodeStripe(data)
	if err != nil {
		panic(fmt.Sprintf("dfbench: lrc encode: %v", err))
	}
	group, ok := lrc.LocalRepairGroup(2)
	if !ok {
		panic("dfbench: no local repair group for block 2")
	}
	sources := make([][]byte, len(group))
	for i, idx := range group {
		sources[i] = stripe[idx]
	}
	out := make([]byte, shard)
	return benchCase{
		name:  "reconstruct/lrc-local",
		bytes: int64(len(group) * shard),
		kernel: func(n int) {
			for i := 0; i < n; i++ {
				if _, err := lrc.ReconstructBlock(2, group, sources); err != nil {
					panic(fmt.Sprintf("dfbench: lrc repair: %v", err))
				}
			}
		},
		scalar: func(n int) {
			for i := 0; i < n; i++ {
				for j := range out {
					out[j] = 0
				}
				for _, s := range sources {
					gf256.RefMulSlice(1, s, out)
				}
			}
		},
	}
}

// degradedReadCase: the macro path — a degraded read of one block through
// the full DFS (source selection + reconstruction). Kernel and "scalar"
// both run the production path; the scalar side additionally replaces the
// final decode with the reference kernel over the same source count, so the
// delta isolates the arithmetic.
func degradedReadCase(shard int) benchCase {
	build := func() (*dfs.FS, *stats.RNG) {
		c := topology.MustNew(topology.Config{Nodes: 20, Racks: 4, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1})
		f, err := dfs.New(c, erasure.MustNew(14, 10), shard, nil, stats.NewRNG(1))
		if err != nil {
			panic(fmt.Sprintf("dfbench: dfs: %v", err))
		}
		data := make([]byte, shard*10*2)
		fill(data, 7, 0)
		file, err := f.Write("bench", data)
		if err != nil {
			panic(fmt.Sprintf("dfbench: write: %v", err))
		}
		c.FailNode(file.Placement.Holder(erasure.BlockID{Stripe: 0, Index: 0}))
		return f, stats.NewRNG(9)
	}
	fsK, rngK := build()
	blk := erasure.BlockID{Stripe: 0, Index: 0}

	// Scalar stand-in: same shard count, reference kernel arithmetic.
	srcs := make([][]byte, 10)
	for i := range srcs {
		srcs[i] = make([]byte, shard)
		fill(srcs[i], byte(i+50), 0)
	}
	out := make([]byte, shard)
	return benchCase{
		name:  "degraded-read/rs14-10",
		bytes: int64(10 * shard),
		kernel: func(n int) {
			for i := 0; i < n; i++ {
				if _, _, err := fsK.DegradedRead("bench", blk, 0, dfs.PreferSameRack, rngK); err != nil {
					panic(fmt.Sprintf("dfbench: degraded read: %v", err))
				}
			}
		},
		scalar: func(n int) {
			for i := 0; i < n; i++ {
				for j := range out {
					out[j] = 0
				}
				for j, s := range srcs {
					gf256.RefMulSlice(byte(3*j+2), s, out)
				}
			}
		},
	}
}

// decodeCoeffs solves for the coefficient row mapping the chosen sources to
// the lost block, matching ReconstructBlock's internal computation.
func decodeCoeffs(code *erasure.Code, idx int, srcIdx []int) []byte {
	rows := make([][]byte, len(srcIdx))
	for i, r := range srcIdx {
		rows[i] = code.EncodingRow(r)
	}
	sub, err := gf256.MatrixFromRows(rows)
	if err != nil {
		panic(fmt.Sprintf("dfbench: decode rows: %v", err))
	}
	dec, err := sub.Invert()
	if err != nil {
		panic(fmt.Sprintf("dfbench: invert: %v", err))
	}
	encRow, err := gf256.MatrixFromRows([][]byte{code.EncodingRow(idx)})
	if err != nil {
		panic(fmt.Sprintf("dfbench: enc row: %v", err))
	}
	coeffs, err := encRow.Mul(dec)
	if err != nil {
		panic(fmt.Sprintf("dfbench: coeff mul: %v", err))
	}
	return coeffs.Row(0)
}
