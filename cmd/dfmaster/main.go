// Command dfmaster runs the distributed master: it builds the scaled
// testbed DFS in memory (generated corpus, erasure-coded placement),
// listens for dfworker registrations, and once every alive node has a
// worker, runs the requested job across them, printing the result as
// JSON on stdout.
//
// The listen address is announced on stderr as "dfmaster: listening on
// ADDR" so scripts (and the end-to-end test) can start workers against
// a kernel-assigned port.
//
// Usage:
//
//	dfmaster -addr 127.0.0.1:7400 &
//	for i in $(seq 12); do dfworker -master 127.0.0.1:7400 & done
//
//	dfmaster -fail 3 -sched EDF -job grep -word the
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"degradedfirst/internal/cluster"
	"degradedfirst/internal/dfs"
	"degradedfirst/internal/erasure"
	"degradedfirst/internal/minimr"
	"degradedfirst/internal/placement"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/stats"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dfmaster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fl := flag.NewFlagSet("dfmaster", flag.ContinueOnError)
	var (
		addr       = fl.String("addr", "127.0.0.1:0", "listen address for worker registration")
		nodes      = fl.Int("nodes", 12, "cluster nodes")
		racks      = fl.Int("racks", 3, "racks")
		mapSlots   = fl.Int("mapslots", 4, "map slots per node")
		redSlots   = fl.Int("reduceslots", 1, "reduce slots per node")
		codeN      = fl.Int("n", 12, "code stripe width n")
		codeK      = fl.Int("k", 10, "code data blocks k")
		blocks     = fl.Int("blocks", 60, "corpus size in blocks")
		blockSize  = fl.Int("blocksize", minimr.TestbedBlockSize, "block size in bytes")
		seed       = fl.Int64("seed", 1, "corpus and placement seed")
		fail       = fl.String("fail", "", "comma-separated node IDs to fail before the run")
		schedName  = fl.String("sched", "LF", "scheduler: LF, BDF or EDF")
		jobKind    = fl.String("job", "wordcount", "job kind: wordcount, grep or linecount")
		word       = fl.String("word", "", "grep needle (required with -job grep)")
		reducers   = fl.Int("reducers", 8, "reduce task count")
		rackBps    = fl.Float64("rackbps", minimr.TestbedRackBps, "virtual rack bandwidth (bytes/s)")
		hbEvery    = fl.Duration("hb-every", 500*time.Millisecond, "real worker heartbeat period")
		hbMiss     = fl.Int("hb-miss", 4, "missed heartbeats before a worker is declared dead")
		rpcTimeout = fl.Duration("rpc-timeout", 30*time.Second, "per-RPC deadline")
	)
	fl.SetOutput(os.Stderr)
	if err := fl.Parse(args); err != nil {
		return err
	}

	kind, err := parseScheduler(*schedName)
	if err != nil {
		return err
	}

	clu := topology.MustNew(topology.Config{
		Nodes: *nodes, Racks: *racks,
		MapSlotsPerNode: *mapSlots, ReduceSlotsPerNode: *redSlots,
	})
	fs, err := dfs.New(clu, erasure.MustNew(*codeN, *codeK), *blockSize,
		placement.RoundRobin{}, stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	corpus, err := workload.GenerateBlockAlignedCorpus(*blocks, *blockSize, *seed)
	if err != nil {
		return err
	}
	if _, err := fs.Write("input.txt", corpus); err != nil {
		return err
	}
	if *fail != "" {
		for _, s := range strings.Split(*fail, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || id < 0 || id >= clu.NumNodes() {
				return fmt.Errorf("bad -fail node %q", s)
			}
			clu.FailNode(topology.NodeID(id))
		}
	}

	m, err := cluster.NewMaster(fs, cluster.MasterOptions{
		Addr:           *addr,
		HeartbeatEvery: *hbEvery,
		HeartbeatMiss:  *hbMiss,
		RPCTimeout:     *rpcTimeout,
		Engine: minimr.Options{
			Scheduler:           kind,
			RackBps:             *rackBps,
			OutOfBandHeartbeats: true,
			Seed:                *seed,
		},
	})
	if err != nil {
		return err
	}
	defer m.Close()
	fmt.Fprintf(os.Stderr, "dfmaster: listening on %s (waiting for %d workers)\n",
		m.Addr(), len(clu.AliveNodes()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := m.Run(ctx, []cluster.JobSpec{{
		Kind:        *jobKind,
		Input:       "input.txt",
		Word:        *word,
		NumReducers: *reducers,
	}})
	if err != nil {
		return err
	}

	doc := map[string]any{
		"scheduler":   rep.Scheduler,
		"failed":      rep.Failed,
		"makespan":    rep.Makespan,
		"bytes_moved": rep.BytesMoved,
		"outputs":     rep.Outputs,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func parseScheduler(s string) (sched.Kind, error) {
	switch strings.ToUpper(s) {
	case "LF":
		return sched.KindLF, nil
	case "BDF":
		return sched.KindBDF, nil
	case "EDF":
		return sched.KindEDF, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (LF, BDF, EDF)", s)
	}
}
