// Command dfsim runs one discrete-event MapReduce simulation and prints a
// summary — a workbench for exploring scheduling behaviour outside the
// registered experiments.
//
// Example:
//
//	dfsim -nodes 40 -racks 4 -n 20 -k 15 -blocks 1440 -sched EDF -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"degradedfirst/internal/jobsched"
	"degradedfirst/internal/mapred"
	"degradedfirst/internal/netsim"
	"degradedfirst/internal/sched"
	"degradedfirst/internal/topology"
	"degradedfirst/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dfsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dfsim", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 40, "number of nodes")
		racks    = fs.Int("racks", 4, "number of racks")
		mapSlots = fs.Int("map-slots", 4, "map slots per node")
		redSlots = fs.Int("reduce-slots", 1, "reduce slots per node")
		n        = fs.Int("n", 20, "erasure code n")
		k        = fs.Int("k", 15, "erasure code k")
		blocks   = fs.Int("blocks", 1440, "native blocks (map tasks)")
		blockMB  = fs.Float64("block-mb", 128, "block size in MB")
		rackMbps = fs.Float64("rack-mbps", 1000, "rack bandwidth in Mbps")
		schedStr = fs.String("sched", "LF", "scheduler: LF, BDF, EDF, EagerDF or DelayLF")
		jsStr    = fs.String("jobsched", "", "job-level policy: fifo (default), fairshare, quota or deadline")
		failStr  = fs.String("failure", "single", "failure: none, single, double, rack")
		reducers = fs.Int("reducers", 30, "reduce tasks")
		shuffle  = fs.Float64("shuffle", 0.01, "shuffle ratio (intermediate/input)")
		mapTime  = fs.Float64("map-time", 20, "mean map task time (s)")
		redTime  = fs.Float64("reduce-time", 30, "mean reduce task time (s)")
		seed     = fs.Int64("seed", 0, "random seed")
		hold     = fs.Bool("hold", false, "use exclusive-hold network contention instead of fluid sharing")
		timeline = fs.Bool("timeline", false, "render the map-slot activity timeline (Figure 3 style)")
		traceOut = fs.String("trace", "", "write structured trace events (JSON lines) to this file")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	kind, err := parseScheduler(*schedStr)
	if err != nil {
		return err
	}
	jsKind, err := jobsched.ParseKind(*jsStr)
	if err != nil {
		return err
	}
	failure, err := parseFailure(*failStr)
	if err != nil {
		return err
	}

	cfg := mapred.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Racks = *racks
	cfg.MapSlotsPerNode = *mapSlots
	cfg.ReduceSlotsPerNode = *redSlots
	cfg.N, cfg.K = *n, *k
	cfg.NumBlocks = *blocks
	cfg.BlockSizeBytes = *blockMB * 1e6
	cfg.RackBps = *rackMbps * netsim.Mbps
	cfg.Scheduler = kind
	cfg.JobSched = jobsched.Config{Policy: jsKind}
	cfg.Failure = failure
	cfg.Seed = *seed
	if *hold {
		cfg.NetMode = netsim.ExclusiveHold
	}
	job := mapred.JobSpec{
		Name:           "job",
		MapTime:        mapred.Dist{Mean: *mapTime, Std: *mapTime / 20},
		ReduceTime:     mapred.Dist{Mean: *redTime, Std: *redTime / 15},
		NumReduceTasks: *reducers,
		ShuffleRatio:   *shuffle,
	}
	var traceSink *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		traceSink = trace.NewJSONL(f)
		// Close is idempotent: this covers early error returns, while the
		// explicit Close below surfaces deferred write errors.
		defer traceSink.Close()
		cfg.Trace = traceSink
		cfg.TraceLabel = "dfsim"
	}

	res, err := mapred.RunContext(ctx, cfg, []mapred.JobSpec{job})
	if err != nil {
		return err
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
	}
	jr := res.Jobs[0]
	fmt.Fprintf(stdout, "scheduler:          %s\n", res.Scheduler)
	fmt.Fprintf(stdout, "failed nodes:       %v\n", res.Failed)
	fmt.Fprintf(stdout, "job runtime:        %.1f s\n", jr.Runtime())
	fmt.Fprintf(stdout, "map phase:          %.1f s\n", jr.MapPhaseEnd-jr.FirstMapLaunch)
	counts := jr.CountByClass()
	fmt.Fprintf(stdout, "task classes:       %v\n", counts)
	fmt.Fprintf(stdout, "mean normal map:    %.2f s\n", jr.MeanNormalMapRuntime())
	if jr.MeanDegradedRuntime() > 0 {
		fmt.Fprintf(stdout, "mean degraded map:  %.2f s\n", jr.MeanDegradedRuntime())
		fmt.Fprintf(stdout, "mean degraded read: %.2f s\n", jr.MeanDegradedReadTime())
	}
	if len(jr.Reduces) > 0 {
		fmt.Fprintf(stdout, "mean reduce:        %.2f s\n", jr.MeanReduceRuntime())
	}
	fmt.Fprintf(stdout, "network volume:     %.1f GB\n", res.BytesMoved/1e9)
	if *timeline {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, mapred.Timeline(res, 0, 100))
	}
	return nil
}

func parseScheduler(s string) (sched.Kind, error) {
	switch strings.ToUpper(s) {
	case "LF":
		return sched.KindLF, nil
	case "BDF":
		return sched.KindBDF, nil
	case "EDF":
		return sched.KindEDF, nil
	case "EAGERDF":
		return sched.KindEagerDF, nil
	case "DELAYLF":
		return sched.KindDelayLF, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q (LF, BDF, EDF, EagerDF, DelayLF)", s)
	}
}

func parseFailure(s string) (topology.FailurePattern, error) {
	switch strings.ToLower(s) {
	case "none":
		return topology.NoFailure, nil
	case "single":
		return topology.SingleNodeFailure, nil
	case "double":
		return topology.DoubleNodeFailure, nil
	case "rack":
		return topology.RackFailure, nil
	default:
		return 0, fmt.Errorf("unknown failure %q (none, single, double, rack)", s)
	}
}
