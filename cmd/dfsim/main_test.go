package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"degradedfirst/internal/trace"
)

func smallArgs(extra ...string) []string {
	base := []string{
		"-nodes", "12", "-racks", "3", "-n", "6", "-k", "4",
		"-blocks", "60", "-block-mb", "16", "-rack-mbps", "100",
		"-reducers", "4", "-map-time", "5", "-reduce-time", "8",
	}
	return append(base, extra...)
}

func TestRunLF(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), smallArgs(), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"scheduler:          LF", "job runtime:", "mean degraded read:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunEDFWithTimeline(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), smallArgs("-sched", "EDF", "-timeline"), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "scheduler:          EDF") {
		t.Fatalf("scheduler not applied:\n%s", got)
	}
	if !strings.Contains(got, "map phase 0.0s") || !strings.Contains(got, "node0") {
		t.Fatalf("timeline missing:\n%s", got)
	}
}

func TestRunHoldModeAndNoFailure(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), smallArgs("-hold", "-failure", "none"), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "mean degraded read") {
		t.Fatal("normal mode must have no degraded reads")
	}
}

func TestSchedulerAndFailureParsing(t *testing.T) {
	for _, s := range []string{"LF", "bdf", "EDF", "EagerDF", "delaylf"} {
		if _, err := parseScheduler(s); err != nil {
			t.Errorf("parseScheduler(%q): %v", s, err)
		}
	}
	if _, err := parseScheduler("nope"); err == nil {
		t.Error("unknown scheduler must fail")
	}
	for _, f := range []string{"none", "single", "double", "rack"} {
		if _, err := parseFailure(f); err != nil {
			t.Errorf("parseFailure(%q): %v", f, err)
		}
	}
	if _, err := parseFailure("meteor"); err == nil {
		t.Error("unknown failure must fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-sched", "bogus"}, &out); err == nil {
		t.Fatal("bad scheduler must fail")
	}
	if err := run(context.Background(), []string{"-failure", "bogus"}, &out); err == nil {
		t.Fatal("bad failure must fail")
	}
	if err := run(context.Background(), []string{"-nodes", "0"}, &out); err == nil {
		t.Fatal("bad cluster must fail")
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	if err := run(context.Background(), smallArgs("-trace", path), &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace file has no events")
	}
	for _, e := range events {
		if e.Run != "dfsim" {
			t.Fatalf("event label = %q, want dfsim", e.Run)
		}
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if err := run(ctx, smallArgs(), &out); err == nil {
		t.Fatal("cancelled context must abort the run")
	}
}
