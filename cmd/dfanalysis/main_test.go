package main

import (
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"normal-mode runtime", "180.0 s", "locality-first", "degraded-first saves"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCustomParams(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-k", "15", "-w-mbps", "500"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "degraded-first saves") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunInvalidParams(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nodes", "0"}, &out); err == nil {
		t.Fatal("invalid params must fail")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag must fail")
	}
}
