// Command dfanalysis evaluates the closed-form runtime models of Section
// IV-B for one parameter setting and prints the normalized runtimes.
//
// Example:
//
//	dfanalysis -k 12 -f 1440 -w-mbps 1000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"degradedfirst/internal/analysis"
	"degradedfirst/internal/netsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dfanalysis:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("dfanalysis", flag.ContinueOnError)
	var (
		n     = fs.Int("nodes", 40, "nodes N")
		r     = fs.Int("racks", 4, "racks R")
		l     = fs.Int("slots", 4, "map slots per node L")
		t     = fs.Float64("task-time", 20, "map task time T (s)")
		sMB   = fs.Float64("block-mb", 128, "block size S (MB)")
		wMbps = fs.Float64("w-mbps", 1000, "rack download bandwidth W (Mbps)")
		k     = fs.Int("k", 12, "erasure code k")
		f     = fs.Int("f", 1440, "total native blocks F")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := analysis.Params{
		N: *n, R: *r, L: *l,
		T: *t,
		S: *sMB * 1e6,
		W: *wMbps * netsim.Mbps,
		K: *k,
		F: *f,
	}
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "normal-mode runtime:        %.1f s\n", p.NormalRuntime())
	fmt.Fprintf(stdout, "expected degraded read:     %.2f s\n", p.DegradedReadTime())
	fmt.Fprintf(stdout, "locality-first runtime:     %.1f s  (normalized %.3f)\n",
		p.LocalityFirstRuntime(), p.NormalizedLF())
	fmt.Fprintf(stdout, "degraded-first runtime:     %.1f s  (normalized %.3f)\n",
		p.DegradedFirstRuntime(), p.NormalizedDF())
	fmt.Fprintf(stdout, "degraded-first saves:       %.1f%%\n", p.ReductionPercent())
	return nil
}
