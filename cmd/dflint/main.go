// Command dflint runs the repository's zero-dependency static-analysis
// suite (internal/lint): determinism, maporder, tracepair, errsink,
// floateq and panicmsg. It exits 0 when the tree is clean, 1 on findings
// and 2 on usage or load errors.
//
// Usage:
//
//	go run ./cmd/dflint ./...
//	go run ./cmd/dflint -json ./internal/runtime
//
// Findings are suppressed with an annotated comment on (or directly
// above) the flagged line:
//
//	//lint:ignore floateq exact tie-break keeps the heap order total
//
// The reason is mandatory; a suppression without one is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"degradedfirst/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a stable JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dflint [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	units, err := loader.Load(patterns)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(loader, units, analyzers)

	if *jsonOut {
		b, err := lint.EncodeJSON(diags)
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(b); err != nil {
			fatal(err)
		}
	} else {
		var sb strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&sb, "%s\n", d)
		}
		if _, err := os.Stdout.WriteString(sb.String()); err != nil {
			fatal(err)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dflint:", err)
	os.Exit(2)
}
