// Command dfworker is one node of the distributed runtime: it registers
// with a dfmaster, receives its node identity and block share, then
// serves map/reduce work and peer fetches until the master goes away.
//
// Usage:
//
//	dfworker -master 127.0.0.1:7400
//	dfworker -master 127.0.0.1:7400 -listen 127.0.0.1:0 -drag 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"degradedfirst/internal/cluster"
)

func main() {
	var (
		master = flag.String("master", "", "master address to register with (required)")
		listen = flag.String("listen", "127.0.0.1:0", "peer listen address")
		drag   = flag.Duration("drag", 0, "artificial real delay added to every map task")
	)
	flag.Parse()
	if *master == "" {
		fmt.Fprintln(os.Stderr, "dfworker: -master is required")
		os.Exit(2)
	}

	w, err := cluster.StartWorker(cluster.WorkerOptions{
		MasterAddr: *master,
		ListenAddr: *listen,
		Drag:       *drag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfworker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dfworker: registered as node %d (pid %d)\n", w.Node(), os.Getpid())
	<-w.Done()
	// Give the final trace events a moment to drain, then exit cleanly:
	// the master dropping the connection is the normal shutdown signal.
	time.Sleep(10 * time.Millisecond)
	fmt.Fprintf(os.Stderr, "dfworker: node %d shutting down\n", w.Node())
}
