// Multijob: the Section V-B multi-job scenario — ten jobs with
// exponential inter-arrival times (mean 120 s) scheduled FIFO over a
// failed cluster, comparing per-job runtimes under LF and EDF
// (Figure 7(f)).
package main

import (
	"fmt"
	"log"

	degradedfirst "degradedfirst"
)

func main() {
	// Build ten jobs with varying sizes and Poisson arrivals.
	jobs := makeJobs()

	results := map[degradedfirst.Scheduler]*degradedfirst.SimResult{}
	for _, kind := range []degradedfirst.Scheduler{
		degradedfirst.LocalityFirst, degradedfirst.EnhancedDegradedFirst,
	} {
		cfg := degradedfirst.DefaultSimConfig()
		cfg.NumBlocks = 720 // keep the example snappy
		cfg.Scheduler = kind
		cfg.Seed = 11
		res, err := degradedfirst.Simulate(cfg, jobs...)
		if err != nil {
			log.Fatal(err)
		}
		results[kind] = res
	}

	lf := results[degradedfirst.LocalityFirst]
	edf := results[degradedfirst.EnhancedDegradedFirst]
	fmt.Printf("%-8s %8s %12s %12s %10s\n", "job", "arrive", "LF runtime", "EDF runtime", "saving")
	for i := range jobs {
		l := lf.Jobs[i].Runtime()
		e := edf.Jobs[i].Runtime()
		fmt.Printf("%-8s %7.0fs %11.1fs %11.1fs %9.1f%%\n",
			jobs[i].Name, jobs[i].SubmitAt, l, e, 100*(l-e)/l)
	}
	fmt.Printf("\nmakespan: LF %.1f s, EDF %.1f s (failed node %v)\n",
		lf.Makespan, edf.Makespan, lf.Failed)
}

func makeJobs() []degradedfirst.JobSpec {
	rng := degradedfirst.NewRNG(3)
	var jobs []degradedfirst.JobSpec
	at := 0.0
	for i := 0; i < 10; i++ {
		j := degradedfirst.DefaultJob()
		j.Name = fmt.Sprintf("job-%02d", i)
		j.NumBlocks = 240 + rng.Intn(480)
		j.SubmitAt = at
		jobs = append(jobs, j)
		at += rng.Exponential(120)
	}
	return jobs
}
