// Timeline: render the map-slot activity of locality-first vs
// degraded-first scheduling as ASCII timelines — a simulation-generated
// version of the paper's Figure 3. Under LF the 'D' (degraded) burst sits
// at the right edge of the map phase, all competing for rack bandwidth;
// under EDF the 'D's are spread across the whole phase.
package main

import (
	"fmt"
	"log"

	degradedfirst "degradedfirst"
)

func main() {
	for _, kind := range []degradedfirst.Scheduler{
		degradedfirst.LocalityFirst,
		degradedfirst.EnhancedDegradedFirst,
	} {
		cfg := degradedfirst.DefaultSimConfig()
		cfg.Nodes = 12
		cfg.Racks = 3
		cfg.N, cfg.K = 6, 4
		cfg.NumBlocks = 96
		cfg.BlockSizeBytes = 64e6
		cfg.RackBps = 200 * degradedfirst.Mbps
		cfg.Scheduler = kind
		cfg.Seed = 4

		job := degradedfirst.DefaultJob()
		job.NumReduceTasks = 0
		job.ShuffleRatio = 0
		job.MapTime = degradedfirst.Dist{Mean: 15, Std: 1}

		res, err := degradedfirst.Simulate(cfg, job)
		if err != nil {
			log.Fatal(err)
		}
		jr := res.Jobs[0]
		fmt.Printf("── %s ── map phase %.1f s, mean degraded read %.1f s ──\n",
			res.Scheduler, jr.MapPhaseEnd-jr.FirstMapLaunch, jr.MeanDegradedReadTime())
		fmt.Print(degradedfirst.SlotTimeline(res, 0, 100))
		fmt.Println()
	}
}
