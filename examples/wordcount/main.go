// Wordcount: run a *real* WordCount job on the real-execution engine over
// an in-memory erasure-coded DFS, kill a node, and verify that degraded
// reads (genuine Reed-Solomon reconstruction) keep the output identical
// while EDF finishes faster than LF.
//
// This is the reproduction's stand-in for the paper's Hadoop testbed
// (Section VI), scaled 1024x down (64 KB blocks for 64 MB blocks).
package main

import (
	"fmt"
	"log"

	degradedfirst "degradedfirst"
)

func main() {
	reference := runOnce(degradedfirst.LocalityFirst, -1) // healthy cluster
	lf := runOnce(degradedfirst.LocalityFirst, 5)
	edf := runOnce(degradedfirst.EnhancedDegradedFirst, 5)

	fmt.Printf("%-28s %10s %14s %14s\n", "", "runtime", "degraded maps", "mean deg map")
	show := func(name string, rep *degradedfirst.MRReport) {
		jr := rep.Jobs[0]
		deg := len(jr.DegradedReadTimes())
		fmt.Printf("%-28s %8.1f s %14d %12.1f s\n", name, jr.Runtime(), deg, jr.MeanDegradedRuntime())
	}
	show("healthy cluster (LF)", reference)
	show("node 5 failed, LF", lf)
	show("node 5 failed, EDF", edf)

	// Verify bit-exact outputs despite reconstruction.
	for word, count := range reference.Outputs[0] {
		if lf.Outputs[0][word] != count || edf.Outputs[0][word] != count {
			log.Fatalf("output mismatch for %q", word)
		}
	}
	fmt.Printf("\nall %d word counts identical across healthy and degraded runs\n",
		len(reference.Outputs[0]))
	fmt.Printf("sample: the=%s whale=%s ocean=%s\n",
		reference.Outputs[0]["the"], reference.Outputs[0]["whale"], reference.Outputs[0]["ocean"])

	fmt.Println("\nLF map-slot timeline (note the D-burst at the right edge):")
	fmt.Print(degradedfirst.MRTimeline(lf, 0, 90))
	fmt.Println("\nEDF map-slot timeline (degraded reads spread across the phase):")
	fmt.Print(degradedfirst.MRTimeline(edf, 0, 90))
}

// runOnce builds the testbed DFS, optionally fails a node, and runs
// WordCount.
func runOnce(kind degradedfirst.Scheduler, failNode int) *degradedfirst.MRReport {
	cluster, err := degradedfirst.NewCluster(degradedfirst.ClusterConfig{
		Nodes: 12, Racks: 3, MapSlotsPerNode: 4, ReduceSlotsPerNode: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	code, err := degradedfirst.NewCode(12, 10)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := degradedfirst.NewFileSystem(cluster, code, degradedfirst.TestbedBlockSize, degradedfirst.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := degradedfirst.GenerateCorpus(120, degradedfirst.TestbedBlockSize, 7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Write("gutenberg.txt", corpus); err != nil {
		log.Fatal(err)
	}
	if failNode >= 0 {
		cluster.FailNode(degradedfirst.NodeID(failNode))
	}
	rep, err := degradedfirst.RunJobs(fs, degradedfirst.MROptions{
		Scheduler: kind,
		RackBps:   degradedfirst.TestbedRackBps,
		Seed:      7,
	}, []degradedfirst.MRJob{degradedfirst.WordCount("gutenberg.txt", 8)})
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
