// Quickstart: simulate the paper's default cluster (40 nodes, 4 racks,
// (20,15) erasure code, 1440 blocks) with a single node failure and
// compare locality-first against degraded-first scheduling.
package main

import (
	"fmt"
	"log"

	degradedfirst "degradedfirst"
)

func main() {
	job := degradedfirst.DefaultJob()

	// Normal-mode reference run (no failure).
	normalCfg := degradedfirst.DefaultSimConfig()
	normalCfg.Failure = degradedfirst.NoFailure
	normalCfg.Seed = 42
	normal, err := degradedfirst.Simulate(normalCfg, job)
	if err != nil {
		log.Fatal(err)
	}
	base := normal.Jobs[0].Runtime()
	fmt.Printf("normal mode (no failure):  %.1f s\n\n", base)

	for _, kind := range []degradedfirst.Scheduler{
		degradedfirst.LocalityFirst,
		degradedfirst.BasicDegradedFirst,
		degradedfirst.EnhancedDegradedFirst,
	} {
		cfg := degradedfirst.DefaultSimConfig()
		cfg.Scheduler = kind
		cfg.Seed = 42 // same seed: same placement, same failed node
		res, err := degradedfirst.Simulate(cfg, job)
		if err != nil {
			log.Fatal(err)
		}
		jr := res.Jobs[0]
		fmt.Printf("%-4s failed node %v: runtime %.1f s (normalized %.2f)\n",
			res.Scheduler, res.Failed, jr.Runtime(), jr.Runtime()/base)
		fmt.Printf("     degraded tasks: %d, mean degraded read %.1f s, remote tasks %d\n",
			len(jr.DegradedReadTimes()), jr.MeanDegradedReadTime(), jr.RemoteTasks())
	}

	fmt.Println("\nDegraded-first scheduling spreads degraded reads across the map")
	fmt.Println("phase instead of bunching them at the end — compare the mean")
	fmt.Println("degraded-read times above.")
}
