// Analysis: explore the closed-form runtime models of Section IV-B — how
// the LF/DF gap moves with the erasure-coding parameter k, the file size
// F, and the rack bandwidth W (the three sweeps of Figure 5).
package main

import (
	"fmt"
	"log"

	degradedfirst "degradedfirst"
)

func main() {
	base := degradedfirst.DefaultAnalysisParams()
	fmt.Printf("default setting: N=%d R=%d L=%d T=%.0fs S=%.0fMB W=%.0fMbps k=%d F=%d\n\n",
		base.N, base.R, base.L, base.T, base.S/1e6, base.W*8/1e6, base.K, base.F)

	fmt.Println("sweep k (Fig. 5a):")
	for _, k := range []int{6, 9, 12, 15, 20, 30} {
		p := base
		p.K = k
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d LF %.3f  DF %.3f  saving %5.1f%%\n",
			k, p.NormalizedLF(), p.NormalizedDF(), p.ReductionPercent())
	}

	fmt.Println("\nsweep F (Fig. 5b):")
	for _, f := range []int{720, 1440, 2880, 5760} {
		p := base
		p.F = f
		fmt.Printf("  F=%-5d LF %.3f  DF %.3f  saving %5.1f%%\n",
			f, p.NormalizedLF(), p.NormalizedDF(), p.ReductionPercent())
	}

	fmt.Println("\nsweep W (Fig. 5c):")
	for _, mbps := range []float64{100, 250, 500, 1000, 10000} {
		p := base
		p.W = mbps * degradedfirst.Mbps
		fmt.Printf("  W=%-6.0fMbps LF %.3f  DF %.3f  saving %5.1f%%\n",
			mbps, p.NormalizedLF(), p.NormalizedDF(), p.ReductionPercent())
	}

	// Where does DF stop helping? When degraded reads are free, both
	// schedules approach the compute bound.
	fmt.Println("\ncrossover intuition: DF's advantage is the degraded-read tail")
	fmt.Println("LF pays serially after the map phase; DF hides it under compute.")
}
